//! # fabsp-bench — the ActorProf evaluation, regenerated
//!
//! One binary per table/figure of §IV (see `src/bin/fig*.rs`) plus
//! Criterion microbenchmarks (see `benches/`). The shared harness here
//! builds the case-study workload — triangle counting over a graph500
//! R-MAT matrix under 1D Cyclic / 1D Range on the paper's 1×16 and 2×16
//! PE grids — and renders/prints each figure's series.
//!
//! ## Scaling knobs (environment)
//!
//! The paper ran scale 16 on Perlmutter; this reproduction defaults to a
//! smaller scale so every figure regenerates in seconds on a laptop core,
//! and all of the paper's *shape* observations are scale-stable:
//!
//! - `ACTORPROF_SCALE` — R-MAT scale (default 10).
//! - `ACTORPROF_PES` — PEs per node (default 16, the paper's value).
//! - `ACTORPROF_OUT` — output directory for figures (default
//!   `target/actorprof-figures`).

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod baseline;
pub mod cockpit_fixture;
pub mod experiment;
pub mod figures;
pub mod overhead;

pub use experiment::{
    build_case_study_graph, env_pes_per_node, env_scale, figure_dir, grid_1node, grid_2node,
    run_traced_tc, FigureCtx,
};
