//! The case-study headline comparison as a Criterion benchmark:
//! distributed triangle counting, 1D Cyclic vs 1D Range, 1 and 2 nodes.
//! The paper's Figs 12–13 observation — Range ≈ 2× faster end-to-end —
//! shows up here as wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use fabsp_graph::edgelist::to_lower_triangular;
use fabsp_graph::rmat::{generate_edges, RmatParams};
use fabsp_graph::Csr;
use fabsp_shmem::Grid;

fn case_study_benches(c: &mut Criterion) {
    let params = RmatParams::graph500(8);
    let lower = to_lower_triangular(&generate_edges(&params));
    let l = Csr::from_edges(params.n_vertices(), &lower);
    let wedges = l.wedge_count();

    let mut g = c.benchmark_group("triangle_counting_scale8");
    g.throughput(Throughput::Elements(wedges));
    for (label, grid, dist) in [
        ("1node_cyclic", Grid::new(1, 8).unwrap(), DistKind::Cyclic),
        ("1node_range", Grid::new(1, 8).unwrap(), DistKind::RangeByNnz),
        ("2node_cyclic", Grid::new(2, 4).unwrap(), DistKind::Cyclic),
        ("2node_range", Grid::new(2, 4).unwrap(), DistKind::RangeByNnz),
    ] {
        let l = &l;
        g.bench_function(BenchmarkId::from_parameter(label), move |b| {
            b.iter(|| {
                let mut config = TriangleConfig::new(grid).with_dist(dist);
                config.validate = false; // reference checked in tests
                count_triangles(l, &config).expect("run").triangles
            })
        });
    }
    g.finish();

    // Tracing the same workload (figure-generation cost).
    let mut g = c.benchmark_group("triangle_counting_traced_scale8");
    g.throughput(Throughput::Elements(wedges));
    let lref = &l;
    g.bench_function("1node_cyclic_all_traces", move |b| {
        b.iter(|| {
            let mut config = TriangleConfig::new(Grid::new(1, 8).unwrap())
                .with_trace(actorprof_trace::TraceConfig::all());
            config.validate = false;
            count_triangles(lref, &config).expect("run").triangles
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = case_study_benches
}
criterion_main!(benches);
