//! The quantitative side of §IV-E: what each ActorProf trace class costs
//! at runtime, measured on the histogram kernel (Listings 1–2).

use actorprof_trace::{PapiConfig, TraceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabsp_apps::histogram::{self, HistogramConfig};
use fabsp_shmem::Grid;

fn overhead_benches(c: &mut Criterion) {
    const UPDATES: usize = 3000;

    let configs: Vec<(&str, TraceConfig)> = vec![
        ("untraced", TraceConfig::off()),
        ("overall", TraceConfig::off().with_overall()),
        ("logical_agg", TraceConfig::off().with_logical()),
        ("logical_exact", TraceConfig::off().with_logical_records()),
        (
            "papi",
            TraceConfig::off().with_papi(PapiConfig::case_study()),
        ),
        ("physical", TraceConfig::off().with_physical()),
        ("all", TraceConfig::all()),
    ];

    let mut g = c.benchmark_group("tracing_overhead_histogram");
    g.throughput(Throughput::Elements((UPDATES * 4) as u64));
    for (label, trace) in configs {
        g.bench_function(BenchmarkId::from_parameter(label), move |b| {
            let trace = trace.clone();
            b.iter(|| {
                let mut cfg = HistogramConfig::new(Grid::new(2, 2).unwrap());
                cfg.updates_per_pe = UPDATES;
                cfg.table_size_per_pe = 256;
                cfg.trace = trace.clone();
                let out = histogram::run(&cfg).expect("histogram");
                std::hint::black_box(out.total_updates)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = overhead_benches
}
criterion_main!(benches);
