//! Microbenchmarks of the SHMEM substrate: blocking puts, non-blocking
//! puts + quiet, remote atomics, barriers, and reductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabsp_shmem::{spmd, Grid};

/// Run `op` inside a 2-PE SPMD world, timing only PE 0's loop of `iters`
/// operations; returns total wall time of the measured section.
fn bench_in_world(
    c: &mut Criterion,
    group: &str,
    name: &str,
    bytes: Option<u64>,
    op: impl Fn(&fabsp_shmem::Pe, &fabsp_shmem::SymmetricVec<u8>, u64) + Sync + Copy,
) {
    let mut g = c.benchmark_group(group);
    if let Some(b) = bytes {
        g.throughput(Throughput::Bytes(b));
    }
    g.bench_function(BenchmarkId::from_parameter(name), |b| {
        b.iter_custom(|iters| {
            let grid = Grid::new(2, 1).unwrap();
            let times = spmd::run(grid, |pe| {
                let sym = pe.alloc_sym::<u8>(4096);
                pe.barrier_all();
                let start = std::time::Instant::now();
                if pe.rank() == 0 {
                    for _ in 0..iters {
                        op(pe, &sym, iters);
                    }
                }
                let elapsed = start.elapsed();
                pe.barrier_all();
                elapsed
            })
            .unwrap();
            times[0]
        })
    });
    g.finish();
}

fn substrate_benches(c: &mut Criterion) {
    let payload = [7u8; 256];

    bench_in_world(c, "shmem", "put_256B_internode", Some(256), move |pe, sym, _| {
        sym.put(pe, 1, 0, &payload).unwrap();
    });

    bench_in_world(
        c,
        "shmem",
        "put_nbi_quiet_256B",
        Some(256),
        move |pe, sym, _| {
            sym.put_nbi(pe, 1, 0, &payload).unwrap();
            pe.quiet();
        },
    );

    // batched nbi: 8 puts per quiet (the double-buffering pattern)
    bench_in_world(
        c,
        "shmem",
        "put_nbi_x8_then_quiet",
        Some(8 * 256),
        move |pe, sym, _| {
            for i in 0..8 {
                sym.put_nbi(pe, 1, i * 256, &payload).unwrap();
            }
            pe.quiet();
        },
    );

    // SKaMPI-OpenSHMEM (§V-B) measures quiet after a FIXED number of
    // puts; Conveyors triggers quiet on double-buffer pressure. This group
    // shows why that matters: quiet cost scales with outstanding puts.
    for outstanding in [1usize, 8, 32] {
        let mut g = c.benchmark_group("shmem_quiet_scaling");
        g.throughput(Throughput::Elements(outstanding as u64));
        g.bench_function(BenchmarkId::from_parameter(outstanding), move |b| {
            b.iter_custom(|iters| {
                let grid = Grid::new(2, 1).unwrap();
                let times = spmd::run(grid, |pe| {
                    let sym = pe.alloc_sym::<u8>(64 * outstanding);
                    pe.barrier_all();
                    let start = std::time::Instant::now();
                    if pe.rank() == 0 {
                        let chunk = [3u8; 64];
                        for _ in 0..iters {
                            for k in 0..outstanding {
                                sym.put_nbi(pe, 1, k * 64, &chunk).unwrap();
                            }
                            pe.quiet();
                        }
                    }
                    let elapsed = start.elapsed();
                    pe.barrier_all();
                    elapsed
                })
                .unwrap();
                times[0]
            })
        });
        g.finish();
    }

    let mut g = c.benchmark_group("shmem");
    g.bench_function("atomic_fetch_add_remote", |b| {
        b.iter_custom(|iters| {
            let grid = Grid::new(2, 1).unwrap();
            let times = spmd::run(grid, |pe| {
                let a = pe.alloc_sym_atomic(1);
                pe.barrier_all();
                let start = std::time::Instant::now();
                if pe.rank() == 0 {
                    for _ in 0..iters {
                        a.fetch_add(pe, 1, 0, 1).unwrap();
                    }
                }
                let elapsed = start.elapsed();
                pe.barrier_all();
                elapsed
            })
            .unwrap();
            times[0]
        })
    });
    g.bench_function("barrier_all_4pe", |b| {
        b.iter_custom(|iters| {
            let grid = Grid::new(1, 4).unwrap();
            let times = spmd::run(grid, |pe| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    pe.barrier_all();
                }
                start.elapsed()
            })
            .unwrap();
            times[0]
        })
    });
    g.bench_function("allreduce_sum_4pe", |b| {
        b.iter_custom(|iters| {
            let grid = Grid::new(1, 4).unwrap();
            let times = spmd::run(grid, |pe| {
                let start = std::time::Instant::now();
                let mut acc = 0u64;
                for i in 0..iters {
                    acc = acc.wrapping_add(pe.allreduce_sum_u64(i));
                }
                std::hint::black_box(acc);
                start.elapsed()
            })
            .unwrap();
            times[0]
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = substrate_benches
}
criterion_main!(benches);
