//! Graph-substrate microbenchmarks: R-MAT generation, edge-list cleanup,
//! CSR construction, distribution building, and reference counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabsp_graph::edgelist::to_lower_triangular;
use fabsp_graph::rmat::{generate_edges, RmatParams};
use fabsp_graph::{triangle_ref, Csr, Distribution};

fn graphgen_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("rmat_generate");
    for scale in [8u32, 10, 12] {
        let params = RmatParams::graph500(scale);
        g.throughput(Throughput::Elements(params.n_edges() as u64));
        g.bench_function(BenchmarkId::from_parameter(scale), move |b| {
            b.iter(|| std::hint::black_box(generate_edges(&params)).len())
        });
    }
    g.finish();

    let params = RmatParams::graph500(10);
    let raw = generate_edges(&params);
    let lower = to_lower_triangular(&raw);

    let mut g = c.benchmark_group("graph_pipeline_scale10");
    g.bench_function("lower_triangularize", |b| {
        b.iter(|| std::hint::black_box(to_lower_triangular(&raw)).len())
    });
    g.bench_function("csr_build", |b| {
        b.iter(|| Csr::from_edges(params.n_vertices(), &lower).nnz())
    });
    let csr = Csr::from_edges(params.n_vertices(), &lower);
    g.bench_function("range_distribution_build", |b| {
        b.iter(|| Distribution::range_by_nnz(&csr, 16).n_pes())
    });
    g.bench_function("reference_count_wedges", |b| {
        b.iter(|| triangle_ref::count_by_wedges(&csr))
    });
    g.bench_function("reference_count_intersection", |b| {
        b.iter(|| triangle_ref::count_by_intersection(&csr))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = graphgen_benches
}
criterion_main!(benches);
