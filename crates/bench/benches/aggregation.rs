//! Conveyor microbenchmarks: per-message cost of the aggregation pipeline
//! under different topologies and buffer capacities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabsp_conveyors::{Conveyor, ConveyorOptions, TopologySpec};
use fabsp_shmem::{spmd, Grid};

/// Complete an all-to-all of `msgs_per_pe` messages per PE; returns the
/// slowest PE's wall time.
fn all_to_all_time(grid: Grid, options: ConveyorOptions, msgs_per_pe: u64) -> std::time::Duration {
    let times = spmd::run(grid, move |pe| {
        let mut c = Conveyor::<u64>::new(pe, options).unwrap();
        let n = pe.n_pes();
        let start = std::time::Instant::now();
        let mut sent = 0u64;
        loop {
            while sent < msgs_per_pe && c.push(pe, sent, (sent as usize) % n).unwrap().is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == msgs_per_pe);
            while c.pull().is_some() {}
            if !active {
                break;
            }
        }
        start.elapsed()
    })
    .unwrap();
    times.into_iter().max().unwrap()
}

fn aggregation_benches(c: &mut Criterion) {
    const MSGS: u64 = 2000;

    let mut g = c.benchmark_group("conveyor_all_to_all");
    g.throughput(Throughput::Elements(MSGS));

    for (label, grid, topo) in [
        ("1node_4pe_1d", Grid::new(1, 4).unwrap(), TopologySpec::Auto),
        ("2node_4pe_mesh", Grid::new(2, 2).unwrap(), TopologySpec::Auto),
        (
            "2node_4pe_forced_1d",
            Grid::new(2, 2).unwrap(),
            TopologySpec::OneD,
        ),
        (
            "2node_8pe_mesh",
            Grid::new(2, 4).unwrap(),
            TopologySpec::Mesh2D,
        ),
        (
            "2node_8pe_cube",
            Grid::new(2, 4).unwrap(),
            TopologySpec::Cube3D,
        ),
    ] {
        g.bench_function(BenchmarkId::from_parameter(label), move |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    total += all_to_all_time(
                        grid,
                        ConveyorOptions {
                            capacity: 64,
                            topology: topo,
                            ..ConveyorOptions::default()
                        },
                        MSGS,
                    );
                }
                total
            })
        });
    }
    g.finish();

    // Ablation: aggregation buffer capacity (the design knob DESIGN.md
    // calls out — tiny buffers devolve to per-message sends).
    let mut g = c.benchmark_group("conveyor_capacity_ablation");
    g.throughput(Throughput::Elements(MSGS));
    for capacity in [1usize, 8, 64, 256] {
        g.bench_function(BenchmarkId::from_parameter(capacity), move |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    total += all_to_all_time(
                        Grid::new(2, 2).unwrap(),
                        ConveyorOptions {
                            capacity,
                            topology: TopologySpec::Auto,
                            ..ConveyorOptions::default()
                        },
                        MSGS,
                    );
                }
                total
            })
        });
    }
    g.finish();

    // Self-send round trip (full buffer path, §IV-D note).
    let mut g = c.benchmark_group("conveyor_self_send");
    g.throughput(Throughput::Elements(MSGS));
    g.bench_function("single_pe_roundtrip", |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                total += all_to_all_time(
                    Grid::single_node(1).unwrap(),
                    ConveyorOptions::default(),
                    MSGS,
                );
            }
            total
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = aggregation_benches
}
criterion_main!(benches);
