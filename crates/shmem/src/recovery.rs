//! Recovery policy and accounting for fault-tolerant SPMD runs.
//!
//! FA-BSP makes recovery tractable: superstep boundaries where every
//! conveyor is quiescent (pushed == pulled, nothing in flight) and every
//! PE's non-blocking puts are quiet are *globally consistent cuts*, so no
//! Chandy–Lamport machinery is needed. The policy here decides what
//! [`crate::spmd::run_recovering`] does when a PE dies: give up (today's
//! default, [`RecoverySpec::Abort`]) or restart the SPMD closure as a
//! fresh attempt with bounded exponential backoff
//! ([`RecoverySpec::RestartFromCheckpoint`]).
//!
//! A restarted attempt re-runs the whole (deterministic, seeded) SPMD
//! closure rather than resuming PE-local state mid-flight: application
//! closures legitimately hold PE-local state outside the symmetric heap,
//! so replaying from the last heap [`crate::Checkpoint`] alone could
//! double-apply local effects. Determinism makes the re-run bit-identical
//! to an unkilled baseline — which the crash-equivalence suite asserts —
//! while [`crate::Checkpoint`] bounds the re-execution window for state
//! that *does* live in the symmetric heap.

use std::time::Duration;

/// What the SPMD launcher does when a PE fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoverySpec {
    /// Tear the world down and report [`crate::ShmemError::PePanicked`]
    /// (the pre-recovery behaviour; the default).
    #[default]
    Abort,
    /// Restart the SPMD closure as a fresh attempt, up to `max_retries`
    /// times, sleeping `backoff * 2^attempt` (capped at one second)
    /// between attempts.
    RestartFromCheckpoint {
        /// Restarts allowed after the initial attempt.
        max_retries: u32,
        /// Base backoff before the first restart; doubles per retry.
        backoff: Duration,
    },
}

impl RecoverySpec {
    /// Restart up to `max_retries` times with no backoff (the common test
    /// configuration).
    pub fn restart(max_retries: u32) -> RecoverySpec {
        RecoverySpec::RestartFromCheckpoint {
            max_retries,
            backoff: Duration::ZERO,
        }
    }

    /// Restarts allowed after the initial attempt (0 under `Abort`).
    pub fn max_retries(&self) -> u32 {
        match self {
            RecoverySpec::Abort => 0,
            RecoverySpec::RestartFromCheckpoint { max_retries, .. } => *max_retries,
        }
    }
}

/// Exponential backoff before retry number `attempt` (0-based), bounded at
/// one second so a pathological spec cannot stall a run indefinitely.
pub(crate) fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    const CAP: Duration = Duration::from_secs(1);
    base.checked_mul(1u32 << attempt.min(20)).unwrap_or(CAP).min(CAP)
}

/// One observed PE failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillRecord {
    /// SPMD attempt (0 = the initial run) the failure happened in.
    pub attempt: u32,
    /// Rank of the PE that died first (collateral poisoning is not logged).
    pub pe: usize,
    /// Its panic message (e.g. `"fault injection: kill_pe …"`).
    pub message: String,
}

/// What fault tolerance did during one [`crate::spmd::run_recovering`]
/// call: the ground truth the crash-equivalence suite checks injected
/// fault plans against, and the `Report`-level recovery story of the
/// `actorprof` facade.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Superstep-boundary checkpoints captured, over all attempts.
    pub checkpoints_taken: u64,
    /// PE failures observed (one entry per failed attempt).
    pub kills_observed: Vec<KillRecord>,
    /// Network operations re-attempted after injected transient timeouts,
    /// over all attempts.
    pub net_retries: u64,
    /// Attempts restarted by the recovery policy.
    pub restarts: u32,
    /// Supersteps begun by failed attempts and therefore re-executed
    /// (the high-water superstep count of each failed attempt).
    pub wasted_supersteps: u64,
}

impl RecoveryLog {
    /// Whether the run saw no faults and took no recovery action.
    pub fn is_clean(&self) -> bool {
        self.kills_observed.is_empty() && self.net_retries == 0 && self.restarts == 0
    }
}

impl std::fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoints {}  kills {}  net-retries {}  restarts {}  wasted supersteps {}",
            self.checkpoints_taken,
            self.kills_observed.len(),
            self.net_retries,
            self.restarts,
            self.wasted_supersteps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(10);
        assert_eq!(backoff_delay(base, 0), Duration::from_millis(10));
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(20));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(80));
        assert_eq!(backoff_delay(base, 30), Duration::from_secs(1));
        assert_eq!(backoff_delay(Duration::ZERO, 5), Duration::ZERO);
    }

    #[test]
    fn default_is_abort() {
        assert_eq!(RecoverySpec::default(), RecoverySpec::Abort);
        assert_eq!(RecoverySpec::Abort.max_retries(), 0);
        assert_eq!(RecoverySpec::restart(3).max_retries(), 3);
    }

    #[test]
    fn clean_log_detection() {
        assert!(RecoveryLog::default().is_clean());
        let log = RecoveryLog {
            restarts: 1,
            ..RecoveryLog::default()
        };
        assert!(!log.is_clean());
        assert!(log.to_string().contains("restarts 1"));
    }
}
