//! # fabsp-shmem — an in-process OpenSHMEM-semantics substrate
//!
//! The FA-BSP stack (HClib-Actor → Conveyors → OpenSHMEM) bottoms out in a
//! PGAS layer. This crate reproduces the OpenSHMEM semantics ActorProf
//! instruments, inside a single process:
//!
//! - **PEs are OS threads** launched SPMD-style by [`spmd::run`]; **nodes**
//!   are groups of PEs described by a [`Grid`] (e.g. the paper's
//!   2 nodes × 16 PEs/node).
//! - A **symmetric heap**: [`SymmetricVec`] gives every PE a same-shaped
//!   region, addressable remotely by `(pe, offset)` just like
//!   `shmem_malloc` memory.
//! - **Blocking puts/gets** ([`SymmetricVec::put`]/[`SymmetricVec::get`])
//!   complete immediately — the `shmem_ptr` + `memcpy` path Conveyors uses
//!   for intra-node `local_send`.
//! - **Non-blocking puts** ([`SymmetricVec::put_nbi`]) are *deferred*: the
//!   bytes become visible at the target only after the initiating PE calls
//!   [`Pe::quiet`] — exactly the `shmem_putmem_nbi` → `shmem_quiet` →
//!   signal-`put` sequence the paper traces as `nonblock_send` +
//!   `nonblock_progress` (§III-C), and exactly the behaviour that makes
//!   those routines invisible to conventional profilers (§V-B).
//! - **Atomics & signals**: [`SymmetricAtomicVec`] supports remote
//!   fetch-add/store/load and spin-waiting, used for delivery signals.
//! - **Collectives**: barrier, broadcast, reductions, all-gather
//!   ([`collectives`]).
//! - A **network model** ([`net::NetStats`]) counts messages/bytes per
//!   class (intra-node copy, non-blocking put, quiet) so the substrate's
//!   traffic is observable independent of the profiler.
//!
//! ## Example
//!
//! ```
//! use fabsp_shmem::{Grid, spmd};
//!
//! // 2 "nodes" with 2 PEs each; every PE deposits its rank in its
//! // neighbour's symmetric array.
//! let grid = Grid::new(2, 2).unwrap();
//! let results = spmd::run(grid, |pe| {
//!     let sym = pe.alloc_sym::<u64>(1);
//!     let dst = (pe.rank() + 1) % pe.n_pes();
//!     sym.put(pe, dst, 0, &[pe.rank() as u64]).unwrap();
//!     pe.barrier_all();
//!     sym.read_local(pe, |v| v[0])
//! })
//! .unwrap();
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

// Every unsafe operation must sit in an explicit, commented block.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomics;
pub mod checkpoint;
pub mod collectives;
pub mod error;
pub mod grid;
pub mod heap;
pub mod net;
pub mod pe;
#[cfg(feature = "race-detect")]
pub mod race;
pub mod recovery;
pub mod ring;
pub mod sched;
pub mod spmd;
mod sync;
pub mod transport;

pub use atomics::SymmetricAtomicVec;
pub use checkpoint::Checkpoint;
pub use error::ShmemError;
pub use grid::Grid;
pub use heap::SymmetricVec;
pub use net::{FaultSpec, KillSpec, NetFlaky, NetStats, TransferClass, DEFAULT_NET_RETRIES};
pub use pe::Pe;
pub use recovery::{KillRecord, RecoveryLog, RecoverySpec};
pub use ring::SpscRing;
pub use sched::{SchedPoint, SchedSpec, Scheduler};
pub use spmd::Harness;
pub use transport::{
    IpcConfig, Transport, TransportKind, TransportSpec, TransportStats,
};

/// Mutex acquisitions by the calling thread so far (debug builds; release
/// builds return 0). Re-exported so lock-freedom claims about the message
/// hot path are testable from any layer: sample before/after and assert a
/// zero delta.
pub use parking_lot::lock_acquisitions as debug_lock_acquisitions;

/// The vendored lock shim itself, re-exported so tests can sanity-check
/// the acquisition counter against a deliberate `Mutex::lock`.
pub use parking_lot;
