//! PE/node layout.
//!
//! The paper's experiments run on "1/2 node with 16/32 PEs" — PEs are
//! OpenSHMEM processing elements and a *node* is "a cluster node, group of
//! PEs" (Table I). [`Grid`] captures that layout: PE ranks are dense,
//! node-major (`node = pe / pes_per_node`), matching how `srun` lays out
//! ranks on Perlmutter.

use crate::error::ShmemError;

/// The PE/node layout of an SPMD execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grid {
    nodes: usize,
    pes_per_node: usize,
}

impl Grid {
    /// A grid of `nodes` × `pes_per_node` PEs.
    pub fn new(nodes: usize, pes_per_node: usize) -> Result<Grid, ShmemError> {
        if nodes == 0 || pes_per_node == 0 {
            return Err(ShmemError::EmptyGrid);
        }
        Ok(Grid {
            nodes,
            pes_per_node,
        })
    }

    /// A single-node grid (the paper's 1-node × 16-PE configuration shape).
    pub fn single_node(pes: usize) -> Result<Grid, ShmemError> {
        Grid::new(1, pes)
    }

    /// Number of cluster nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// PEs per node.
    #[inline]
    pub fn pes_per_node(&self) -> usize {
        self.pes_per_node
    }

    /// Total number of PEs.
    #[inline]
    pub fn n_pes(&self) -> usize {
        self.nodes * self.pes_per_node
    }

    /// The node hosting `pe`.
    #[inline]
    pub fn node_of(&self, pe: usize) -> usize {
        debug_assert!(pe < self.n_pes());
        pe / self.pes_per_node
    }

    /// `pe`'s index within its node.
    #[inline]
    pub fn local_index(&self, pe: usize) -> usize {
        debug_assert!(pe < self.n_pes());
        pe % self.pes_per_node
    }

    /// Whether two PEs share a node (determines `local_send` vs
    /// `nonblock_send` in the Conveyors layer).
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The global rank of the PE at (`node`, `local`).
    #[inline]
    pub fn pe_at(&self, node: usize, local: usize) -> usize {
        debug_assert!(node < self.nodes && local < self.pes_per_node);
        node * self.pes_per_node + local
    }

    /// Validate a PE rank.
    pub fn check_pe(&self, pe: usize) -> Result<(), ShmemError> {
        if pe < self.n_pes() {
            Ok(())
        } else {
            Err(ShmemError::InvalidPe {
                pe,
                n_pes: self.n_pes(),
            })
        }
    }
}

impl std::fmt::Display for Grid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} node(s) x {} PEs/node ({} PEs)",
            self.nodes,
            self.pes_per_node,
            self.n_pes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_major_rank_layout() {
        let g = Grid::new(2, 16).unwrap();
        assert_eq!(g.n_pes(), 32);
        assert_eq!(g.node_of(0), 0);
        assert_eq!(g.node_of(15), 0);
        assert_eq!(g.node_of(16), 1);
        assert_eq!(g.local_index(17), 1);
        assert_eq!(g.pe_at(1, 1), 17);
        assert!(g.same_node(0, 15));
        assert!(!g.same_node(15, 16));
    }

    #[test]
    fn empty_grid_rejected() {
        assert_eq!(Grid::new(0, 4).unwrap_err(), ShmemError::EmptyGrid);
        assert_eq!(Grid::new(4, 0).unwrap_err(), ShmemError::EmptyGrid);
    }

    #[test]
    fn check_pe_bounds() {
        let g = Grid::single_node(4).unwrap();
        assert!(g.check_pe(3).is_ok());
        assert_eq!(
            g.check_pe(4).unwrap_err(),
            ShmemError::InvalidPe { pe: 4, n_pes: 4 }
        );
    }

    #[test]
    fn pe_at_inverts_node_of_local_index() {
        let g = Grid::new(3, 5).unwrap();
        for pe in 0..g.n_pes() {
            assert_eq!(g.pe_at(g.node_of(pe), g.local_index(pe)), pe);
        }
    }

    #[test]
    fn display_shows_shape() {
        let g = Grid::new(2, 16).unwrap();
        assert_eq!(g.to_string(), "2 node(s) x 16 PEs/node (32 PEs)");
    }
}
