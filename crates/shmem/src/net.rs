//! Network traffic accounting.
//!
//! Each transfer the symmetric heap performs is classified and counted so
//! the substrate's traffic is observable even without the profiler: the
//! physical trace of §III-C is the per-event view; these are the aggregate
//! counters. Counters are kept per *source* PE as plain atomics — each PE
//! only ever records against its own slot, so the per-message/per-flush
//! recording path is wait-free and mutex-free (readers merging the ledger
//! tolerate the usual snapshot skew of concurrent counters).

use std::sync::atomic::{AtomicU64, Ordering};

/// Classification of a transfer at the SHMEM level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferClass {
    /// Same-node copy through `shmem_ptr` (a plain `memcpy`).
    LocalCopy,
    /// Cross-node blocking put.
    RemotePut,
    /// Cross-node blocking get.
    RemoteGet,
    /// Cross-node non-blocking put (`shmem_putmem_nbi`) — *initiated*.
    NonBlockingPut,
    /// Completion fence (`shmem_quiet`); byte count is the flushed volume.
    Quiet,
    /// Remote atomic operation (fetch-add, store, …).
    Atomic,
}

/// Per-class message and byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Number of operations in this class.
    pub ops: u64,
    /// Bytes moved by operations in this class.
    pub bytes: u64,
}

/// Aggregated network statistics for one PE (or a whole world when merged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Same-node memcpy traffic.
    pub local_copy: ClassStats,
    /// Cross-node blocking put traffic.
    pub remote_put: ClassStats,
    /// Cross-node blocking get traffic.
    pub remote_get: ClassStats,
    /// Non-blocking put initiations.
    pub nbi_put: ClassStats,
    /// Quiet fences (bytes = flushed volume).
    pub quiet: ClassStats,
    /// Remote atomics.
    pub atomic: ClassStats,
}

impl NetStats {
    /// Record one operation of `class` moving `bytes`.
    #[inline]
    pub fn record(&mut self, class: TransferClass, bytes: usize) {
        let slot = match class {
            TransferClass::LocalCopy => &mut self.local_copy,
            TransferClass::RemotePut => &mut self.remote_put,
            TransferClass::RemoteGet => &mut self.remote_get,
            TransferClass::NonBlockingPut => &mut self.nbi_put,
            TransferClass::Quiet => &mut self.quiet,
            TransferClass::Atomic => &mut self.atomic,
        };
        slot.ops += 1;
        slot.bytes += bytes as u64;
    }

    /// Merge `other` into `self`.
    pub fn merge(&mut self, other: &NetStats) {
        for (a, b) in [
            (&mut self.local_copy, &other.local_copy),
            (&mut self.remote_put, &other.remote_put),
            (&mut self.remote_get, &other.remote_get),
            (&mut self.nbi_put, &other.nbi_put),
            (&mut self.quiet, &other.quiet),
            (&mut self.atomic, &other.atomic),
        ] {
            a.ops += b.ops;
            a.bytes += b.bytes;
        }
    }

    /// Total bytes that crossed a node boundary (puts, gets, nbi puts).
    pub fn inter_node_bytes(&self) -> u64 {
        self.remote_put.bytes + self.remote_get.bytes + self.nbi_put.bytes
    }

    /// Total bytes copied within a node.
    pub fn intra_node_bytes(&self) -> u64 {
        self.local_copy.bytes
    }
}

/// Deterministic PE-death injection: kill one rank at the end of one
/// superstep, on the first SPMD attempt only (a restarted attempt models
/// the failed node's replacement, so the fault does not recur).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KillSpec {
    /// Rank of the PE to kill.
    pub rank: u32,
    /// Superstep (0-based, as counted by [`crate::Pe::begin_superstep`])
    /// at whose end the PE dies.
    pub at_superstep: u32,
}

/// Default per-op retry budget for [`NetFlaky`]: an operation that times
/// out this many consecutive times is declared dead (the PE panics and the
/// harness recovery policy takes over).
pub const DEFAULT_NET_RETRIES: u32 = 8;

/// Seeded transient network flakiness: each network operation attempt
/// times out with probability `drop_ppm / 1e6` and is retried with bounded
/// exponential backoff. Probability is stored in parts-per-million so the
/// spec stays `Copy + Eq` (replayable as a test input, like a seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetFlaky {
    /// Seed of the per-PE timeout stream.
    pub seed: u64,
    /// Per-attempt timeout probability, in parts per million (clamped to
    /// 950_000 at construction so op completion stays almost sure).
    pub drop_ppm: u32,
    /// Consecutive timeouts tolerated per op before the PE gives up.
    pub max_retries: u32,
}

/// Network-level fault injection, installed per-run through
/// [`crate::spmd::Harness`].
///
/// Every fault here stays inside OpenSHMEM's legal envelope — it makes the
/// substrate exercise freedoms the specification grants but a friendly
/// in-process implementation never uses:
///
/// - Non-blocking puts are already *delayed to the latest legal instant*:
///   data becomes visible only at the initiator's `quiet` (never earlier),
///   which is the substrate's baseline behaviour.
/// - [`nbi_shuffle_seed`](FaultSpec::nbi_shuffle_seed) additionally
///   *reorders* the puts applied by one `quiet`: between two fences,
///   OpenSHMEM leaves non-blocking puts unordered, so any permutation of
///   their delivery is a legal network. Puts separated by a
///   [`fence`](crate::Pe::fence) keep their relative order.
/// - [`flaky`](FaultSpec::flaky) makes individual operations *time out and
///   retry*: OpenSHMEM guarantees completion, not latency, so a retried op
///   that eventually lands is indistinguishable from a slow network. A
///   retried `put_nbi` stays invisible until the initiator's `quiet`
///   exactly like an un-retried one.
/// - [`kill`](FaultSpec::kill) steps outside the contract on purpose: it
///   models fail-stop node death, the input of the recovery policy
///   ([`crate::RecoverySpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Apply the non-blocking puts completed by each `quiet` in a seeded
    /// pseudo-random order (per PE, per quiet) instead of issue order.
    /// `None` keeps issue order.
    pub nbi_shuffle_seed: Option<u64>,
    /// Kill one PE at one superstep boundary (first attempt only).
    pub kill: Option<KillSpec>,
    /// Seeded transient timeouts with exponential-backoff retry.
    pub flaky: Option<NetFlaky>,
}

impl FaultSpec {
    /// No faults (production behaviour).
    pub const NONE: FaultSpec = FaultSpec {
        nbi_shuffle_seed: None,
        kill: None,
        flaky: None,
    };

    /// Shuffle non-blocking-put delivery order with `seed`.
    pub fn nbi_shuffle(seed: u64) -> FaultSpec {
        FaultSpec {
            nbi_shuffle_seed: Some(seed),
            ..FaultSpec::NONE
        }
    }

    /// Kill PE `rank` at the end of superstep `at_superstep` (first SPMD
    /// attempt only). A deterministic, replayable test input: combined
    /// with a seeded schedule it names one exact death.
    pub fn kill_pe(rank: u32, at_superstep: u32) -> FaultSpec {
        FaultSpec {
            kill: Some(KillSpec { rank, at_superstep }),
            ..FaultSpec::NONE
        }
    }

    /// Make each network operation attempt time out with probability `p`
    /// (clamped to `[0, 0.95]`), seeded so the timeout stream is
    /// deterministic per PE. Retries use bounded exponential backoff
    /// ([`DEFAULT_NET_RETRIES`] attempts per op).
    pub fn net_flaky(seed: u64, p: f64) -> FaultSpec {
        let drop_ppm = (p.clamp(0.0, 0.95) * 1_000_000.0) as u32;
        FaultSpec {
            flaky: Some(NetFlaky {
                seed,
                drop_ppm,
                max_retries: DEFAULT_NET_RETRIES,
            }),
            ..FaultSpec::NONE
        }
    }

    /// Add a kill fault to this spec (builder-style composition).
    pub fn and_kill_pe(mut self, rank: u32, at_superstep: u32) -> FaultSpec {
        self.kill = Some(KillSpec { rank, at_superstep });
        self
    }

    /// Add seeded transient flakiness to this spec.
    pub fn and_net_flaky(mut self, seed: u64, p: f64) -> FaultSpec {
        self.flaky = FaultSpec::net_flaky(seed, p).flaky;
        self
    }

    /// Whether any fault is enabled.
    pub fn any(&self) -> bool {
        self.nbi_shuffle_seed.is_some() || self.kill.is_some() || self.flaky.is_some()
    }
}

/// Atomic (ops, bytes) pair per transfer class for one source PE.
#[derive(Default)]
struct PeNetCells {
    cells: [(AtomicU64, AtomicU64); 6],
}

impl PeNetCells {
    fn slot(class: TransferClass) -> usize {
        match class {
            TransferClass::LocalCopy => 0,
            TransferClass::RemotePut => 1,
            TransferClass::RemoteGet => 2,
            TransferClass::NonBlockingPut => 3,
            TransferClass::Quiet => 4,
            TransferClass::Atomic => 5,
        }
    }

    fn snapshot(&self) -> NetStats {
        let read = |i: usize| ClassStats {
            ops: self.cells[i].0.load(Ordering::Relaxed),
            bytes: self.cells[i].1.load(Ordering::Relaxed),
        };
        NetStats {
            local_copy: read(0),
            remote_put: read(1),
            remote_get: read(2),
            nbi_put: read(3),
            quiet: read(4),
            atomic: read(5),
        }
    }

    /// Overwrite this PE's counters from a checkpoint snapshot. Relaxed is
    /// enough: restore only runs inside a collective cut, where the owning
    /// PE is not recording concurrently and the departing collective edge
    /// publishes the stores.
    fn restore(&self, s: &NetStats) {
        let write = |i: usize, c: &ClassStats| {
            self.cells[i].0.store(c.ops, Ordering::Relaxed);
            self.cells[i].1.store(c.bytes, Ordering::Relaxed);
        };
        write(0, &s.local_copy);
        write(1, &s.remote_put);
        write(2, &s.remote_get);
        write(3, &s.nbi_put);
        write(4, &s.quiet);
        write(5, &s.atomic);
    }
}

/// World-wide traffic ledger: one atomically counted slot per source PE.
/// Recording is wait-free — no mutex on the conveyor flush path.
pub(crate) struct NetLedger {
    per_pe: Vec<PeNetCells>,
}

impl NetLedger {
    pub(crate) fn new(n_pes: usize) -> NetLedger {
        NetLedger {
            per_pe: (0..n_pes).map(|_| PeNetCells::default()).collect(),
        }
    }

    #[inline]
    pub(crate) fn record(&self, src_pe: usize, class: TransferClass, bytes: usize) {
        let (ops, b) = &self.per_pe[src_pe].cells[PeNetCells::slot(class)];
        ops.fetch_add(1, Ordering::Relaxed);
        b.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Stats attributed to one source PE.
    pub(crate) fn pe_stats(&self, pe: usize) -> NetStats {
        self.per_pe[pe].snapshot()
    }

    /// Merged stats over all source PEs.
    pub(crate) fn total(&self) -> NetStats {
        let mut total = NetStats::default();
        for slot in &self.per_pe {
            total.merge(&slot.snapshot());
        }
        total
    }

    /// Per-PE snapshot of the whole ledger (checkpoint capture).
    pub(crate) fn snapshot_all(&self) -> Vec<NetStats> {
        self.per_pe.iter().map(|slot| slot.snapshot()).collect()
    }

    /// Overwrite the whole ledger from a checkpoint snapshot (collective
    /// cut only; see [`PeNetCells::restore`]).
    pub(crate) fn restore_all(&self, stats: &[NetStats]) {
        assert_eq!(stats.len(), self.per_pe.len(), "ledger snapshot PE count");
        for (slot, s) in self.per_pe.iter().zip(stats) {
            slot.restore(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_class() {
        let mut s = NetStats::default();
        s.record(TransferClass::LocalCopy, 100);
        s.record(TransferClass::NonBlockingPut, 50);
        s.record(TransferClass::NonBlockingPut, 50);
        assert_eq!(s.local_copy, ClassStats { ops: 1, bytes: 100 });
        assert_eq!(s.nbi_put, ClassStats { ops: 2, bytes: 100 });
        assert_eq!(s.inter_node_bytes(), 100);
        assert_eq!(s.intra_node_bytes(), 100);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = NetStats::default();
        a.record(TransferClass::Quiet, 8);
        let mut b = NetStats::default();
        b.record(TransferClass::Quiet, 16);
        b.record(TransferClass::Atomic, 8);
        a.merge(&b);
        assert_eq!(a.quiet, ClassStats { ops: 2, bytes: 24 });
        assert_eq!(a.atomic, ClassStats { ops: 1, bytes: 8 });
    }

    #[test]
    fn ledger_attributes_by_source() {
        let l = NetLedger::new(3);
        l.record(0, TransferClass::RemotePut, 10);
        l.record(2, TransferClass::RemotePut, 30);
        assert_eq!(l.pe_stats(0).remote_put.bytes, 10);
        assert_eq!(l.pe_stats(1).remote_put.bytes, 0);
        assert_eq!(l.total().remote_put.bytes, 40);
        assert_eq!(l.total().remote_put.ops, 2);
    }
}
