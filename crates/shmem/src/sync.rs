//! Internal synchronization machinery: a poisonable barrier and the
//! rendezvous backing collectives and collective allocation.
//!
//! Every collective call site is assigned a per-PE sequence number; SPMD
//! discipline (all PEs execute the same collectives in the same order, as
//! OpenSHMEM requires) makes the sequence number a global identifier for
//! "the k-th collective". Each PE deposits a value under that id; the last
//! arriver combines the deposits into a shared result; everyone picks the
//! result up and the last leaver reclaims the slot.
//!
//! Both primitives are *poisonable*: when one PE panics, the SPMD launcher
//! poisons the world so that PEs blocked here panic out instead of hanging
//! forever — std's `Barrier` cannot do that.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

const POISON_MSG: &str = "SPMD world poisoned: another PE panicked";

type Deposit = Box<dyn Any + Send>;
type SharedResult = Arc<dyn Any + Send + Sync>;

/// A reusable sense-reversing barrier that can be poisoned.
pub(crate) struct PoisonBarrier {
    n: usize,
    state: Mutex<(usize, u64)>, // (count, generation)
    cv: Condvar,
    poisoned: AtomicBool,
}

impl PoisonBarrier {
    pub(crate) fn new(n: usize) -> PoisonBarrier {
        PoisonBarrier {
            n,
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Block until all `n` PEs arrive. Panics if the world is poisoned.
    pub(crate) fn wait(&self) {
        assert!(!self.poisoned.load(Ordering::Acquire), "{POISON_MSG}");
        let mut state = self.state.lock();
        let generation = state.1;
        state.0 += 1;
        if state.0 == self.n {
            state.0 = 0;
            state.1 = state.1.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        while state.1 == generation {
            self.cv.wait(&mut state);
            assert!(!self.poisoned.load(Ordering::Acquire), "{POISON_MSG}");
        }
    }

    /// Like [`wait`](PoisonBarrier::wait), but poll instead of sleeping on
    /// the condvar, calling `idle` between checks. Required under a
    /// serializing scheduler, where a condvar sleep would hold the
    /// execution token and deadlock the world: `idle` is where the waiting
    /// PE hands the token to the PEs it is waiting for.
    pub(crate) fn wait_with_idle(&self, idle: &dyn Fn()) {
        assert!(!self.poisoned.load(Ordering::Acquire), "{POISON_MSG}");
        let generation = {
            let mut state = self.state.lock();
            let generation = state.1;
            state.0 += 1;
            if state.0 == self.n {
                state.0 = 0;
                state.1 = state.1.wrapping_add(1);
                self.cv.notify_all();
                return;
            }
            generation
        };
        loop {
            idle();
            assert!(!self.poisoned.load(Ordering::Acquire), "{POISON_MSG}");
            if self.state.lock().1 != generation {
                return;
            }
        }
    }

    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    #[cfg(test)]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

struct Cell {
    deposits: Vec<Option<Deposit>>,
    arrived: usize,
    result: Option<SharedResult>,
    departed: usize,
}

/// One rendezvous point shared by all PEs of a world.
pub(crate) struct Rendezvous {
    n_pes: usize,
    state: Mutex<HashMap<u64, Cell>>,
    cv: Condvar,
    poisoned: AtomicBool,
}

impl Rendezvous {
    pub(crate) fn new(n_pes: usize) -> Rendezvous {
        Rendezvous {
            n_pes,
            state: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    /// Run collective number `seq`: deposit `value` for `pe`; the final
    /// arriver computes `combine(deposits-in-pe-order)`; every PE receives
    /// the shared result.
    pub(crate) fn collective<T, R>(
        &self,
        seq: u64,
        pe: usize,
        value: T,
        combine: impl FnOnce(Vec<T>) -> R,
    ) -> Arc<R>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
    {
        self.collective_with_idle(seq, pe, value, combine, None)
    }

    /// [`collective`](Rendezvous::collective), with an optional `idle`
    /// callback: when present, non-final arrivers poll for the result
    /// calling `idle` between checks instead of sleeping on the condvar —
    /// see [`PoisonBarrier::wait_with_idle`] for why schedulers need this.
    pub(crate) fn collective_with_idle<T, R>(
        &self,
        seq: u64,
        pe: usize,
        value: T,
        combine: impl FnOnce(Vec<T>) -> R,
        idle: Option<&dyn Fn()>,
    ) -> Arc<R>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
    {
        assert!(!self.poisoned.load(Ordering::Acquire), "{POISON_MSG}");
        let mut state = self.state.lock();
        let cell = state.entry(seq).or_insert_with(|| Cell {
            deposits: (0..self.n_pes).map(|_| None).collect(),
            arrived: 0,
            result: None,
            departed: 0,
        });
        assert!(
            cell.deposits[pe].is_none(),
            "PE {pe} deposited twice for collective {seq}: collective call order diverged"
        );
        cell.deposits[pe] = Some(Box::new(value));
        cell.arrived += 1;

        if cell.arrived == self.n_pes {
            let deposits: Vec<T> = cell
                .deposits
                .iter_mut()
                .map(|d| {
                    *d.take()
                        .expect("deposit missing at combine")
                        .downcast::<T>()
                        .expect("collective type mismatch across PEs")
                })
                .collect();
            let result: Arc<R> = Arc::new(combine(deposits));
            cell.result = Some(result.clone() as SharedResult);
            self.cv.notify_all();
            Self::depart(&mut state, seq, self.n_pes);
            return result;
        }

        loop {
            {
                let cell = state.get(&seq).expect("rendezvous cell vanished");
                if let Some(result) = &cell.result {
                    let out = result
                        .clone()
                        .downcast::<R>()
                        .expect("collective result type mismatch");
                    Self::depart(&mut state, seq, self.n_pes);
                    return out;
                }
            }
            match idle {
                None => self.cv.wait(&mut state),
                Some(idle) => {
                    drop(state);
                    idle();
                    state = self.state.lock();
                }
            }
            assert!(!self.poisoned.load(Ordering::Acquire), "{POISON_MSG}");
        }
    }

    fn depart(state: &mut HashMap<u64, Cell>, seq: u64, n_pes: usize) {
        let cell = state.get_mut(&seq).expect("rendezvous cell vanished");
        cell.departed += 1;
        if cell.departed == n_pes {
            state.remove(&seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_collective(n: usize, seq: u64) -> Vec<u64> {
        let r = Arc::new(Rendezvous::new(n));
        let handles: Vec<_> = (0..n)
            .map(|pe| {
                let r = Arc::clone(&r);
                thread::spawn(move || *r.collective(seq, pe, pe as u64, |vs| vs.iter().sum::<u64>()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn all_pes_get_combined_result() {
        let results = run_collective(8, 0);
        assert_eq!(results, vec![28; 8]);
    }

    #[test]
    fn slot_is_reclaimed_after_departure() {
        let r = Arc::new(Rendezvous::new(2));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || {
            let _ = r2.collective(7, 1, 1u32, |v| v.len());
        });
        let _ = r.collective(7, 0, 0u32, |v| v.len());
        h.join().unwrap();
        assert!(r.state.lock().is_empty());
    }

    #[test]
    fn deposits_are_in_pe_order() {
        let r = Arc::new(Rendezvous::new(4));
        let handles: Vec<_> = (0..4)
            .map(|pe| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    // stagger arrival order
                    thread::sleep(std::time::Duration::from_millis((4 - pe as u64) * 5));
                    (*r.collective(1, pe, pe, |vs| vs)).clone()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn independent_sequences_do_not_interfere() {
        let r = Arc::new(Rendezvous::new(2));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || {
            let a = *r2.collective(10, 1, 1u64, |v| v.iter().sum::<u64>());
            let b = *r2.collective(11, 1, 10u64, |v| v.iter().sum::<u64>());
            (a, b)
        });
        let a = *r.collective(10, 0, 2u64, |v| v.iter().sum::<u64>());
        let b = *r.collective(11, 0, 20u64, |v| v.iter().sum::<u64>());
        assert_eq!((a, b), (3, 30));
        assert_eq!(h.join().unwrap(), (3, 30));
    }

    #[test]
    fn barrier_synchronizes_all_threads() {
        let b = Arc::new(PoisonBarrier::new(4));
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    b.wait();
                    // after the barrier, every increment must be visible
                    assert_eq!(c.load(Ordering::SeqCst), 4);
                    b.wait(); // reusable
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poisoned_barrier_releases_waiters_with_panic() {
        let b = Arc::new(PoisonBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b2.wait()));
            r.is_err()
        });
        thread::sleep(std::time::Duration::from_millis(20));
        b.poison();
        assert!(h.join().unwrap());
        assert!(b.is_poisoned());
    }

    #[test]
    fn poisoned_rendezvous_releases_waiters_with_panic() {
        let r = Arc::new(Rendezvous::new(2));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                r2.collective(0, 0, 1u64, |v| v.len())
            }));
            res.is_err()
        });
        thread::sleep(std::time::Duration::from_millis(20));
        r.poison();
        assert!(h.join().unwrap());
    }
}
