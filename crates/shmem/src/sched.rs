//! Pluggable PE scheduling: deterministic exploration of SPMD interleavings.
//!
//! Under the OS scheduler, the interleaving of PE threads is whatever the
//! kernel happens to produce — unrepeatable, and skewed toward a tiny
//! corner of the legal schedule space. This module lets a [`Scheduler`]
//! take over: every observable substrate operation (put, non-blocking put,
//! quiet, fence, barrier, collective, atomic, poll) calls
//! [`Scheduler::yield_point`], and a scheduler that serializes PEs there
//! controls the *complete* interleaving of observable events.
//!
//! [`RandomWalkScheduler`] is the built-in implementation: a cooperative
//! token passed among PE threads, handed to a uniformly random ready thread
//! at every yield point. The walk is driven by a seeded PRNG, so a `u64`
//! seed names — and replays, exactly — one schedule. Sweeping seeds
//! explores the schedule space; re-running one seed reproduces a failure.
//!
//! Schedulers are installed per-run through [`crate::spmd::Harness`];
//! plain [`crate::spmd::run`] with a [`crate::Grid`] keeps the free-running
//! OS behaviour ([`SchedSpec::Os`]).

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where in the substrate a PE is yielding. Every variant is an operation
/// whose relative order across PEs is observable by another PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPoint {
    /// Blocking put about to become remotely visible.
    Put,
    /// Blocking get about to read remote memory.
    Get,
    /// Non-blocking put about to be staged (visibility still deferred).
    PutNbi,
    /// `quiet`: pending non-blocking puts about to become visible.
    Quiet,
    /// `fence`: ordering point between non-blocking puts.
    Fence,
    /// Barrier entry.
    Barrier,
    /// Collective (allocation, reduction, broadcast, gather) entry.
    Collective,
    /// Remote atomic operation (fetch-add / store / load).
    Atomic,
    /// A cooperative poll iteration ([`crate::Pe::poll_yield`]).
    Poll,
}

/// A scheduling hook threaded through the substrate.
///
/// Implementations decide, at every observable operation, which PE runs
/// next. The contract: PE threads call [`register`](Scheduler::register)
/// before executing any substrate operation, [`yield_point`](Scheduler::yield_point) at each
/// observable operation (the call may block until the scheduler grants the
/// PE the right to proceed), and [`finished`](Scheduler::finished) exactly
/// once when the PE's closure returns or unwinds. [`poison`](Scheduler::poison)
/// must release every blocked PE so a panic elsewhere cannot hang the run.
pub trait Scheduler: Send + Sync {
    /// A PE thread announces itself before its first operation. May block
    /// (e.g. until all PEs have registered, so schedules are deterministic).
    fn register(&self, rank: usize);

    /// A PE reached an observable operation. May block to serialize.
    fn yield_point(&self, rank: usize, point: SchedPoint);

    /// The PE's SPMD closure returned or unwound; it will yield no more.
    fn finished(&self, rank: usize);

    /// The world is being poisoned: release every blocked PE immediately.
    fn poison(&self);
}

/// Step budget for [`SchedSpec::random_walk`]: a random-walk schedule that
/// makes this many scheduling decisions without finishing is declared
/// non-terminating and the run fails (poisoned) instead of hanging — this
/// is the testkit's termination checker.
pub const DEFAULT_STEP_BUDGET: u64 = 20_000_000;

/// How to schedule the PEs of one SPMD run. `Copy`, so app configs can
/// carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedSpec {
    /// Free-running OS threads (production behaviour; zero overhead).
    #[default]
    Os,
    /// Serialize PEs under a seeded [`RandomWalkScheduler`]. Equal seeds
    /// replay equal schedules; `max_steps` bounds the walk (see
    /// [`DEFAULT_STEP_BUDGET`]).
    RandomWalk { seed: u64, max_steps: u64 },
}

impl SchedSpec {
    /// A seeded random-walk schedule with the default step budget.
    pub fn random_walk(seed: u64) -> SchedSpec {
        SchedSpec::RandomWalk {
            seed,
            max_steps: DEFAULT_STEP_BUDGET,
        }
    }

    /// Instantiate the scheduler this spec describes (`None` = OS threads).
    pub fn build(self, n_pes: usize) -> Option<Arc<dyn Scheduler>> {
        match self {
            SchedSpec::Os => None,
            SchedSpec::RandomWalk { seed, max_steps } => {
                Some(Arc::new(RandomWalkScheduler::new(n_pes, seed, max_steps)))
            }
        }
    }
}

struct Walk {
    rng: StdRng,
    /// `ready[r]`: PE r is registered, unfinished, and schedulable.
    ready: Vec<bool>,
    registered: usize,
    /// The PE currently holding the execution token, if any.
    current: Option<usize>,
    steps: u64,
    poisoned: bool,
}

impl Walk {
    /// Hand the token to a uniformly random ready PE (or nobody).
    fn grant_next(&mut self) {
        let candidates: Vec<usize> = (0..self.ready.len()).filter(|&r| self.ready[r]).collect();
        self.current = if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        };
    }
}

/// The built-in seeded scheduler: one execution token, passed to a
/// uniformly random ready PE at every yield point.
///
/// Execution is fully serialized — exactly one PE runs between consecutive
/// yield points — so the sequence of (rank, [`SchedPoint`]) pairs is a
/// total order of all observable events, determined entirely by the seed
/// and the program. PEs waiting on a condition (barrier, signal) stay in
/// the ready set and poll: the walk revisits them until the condition
/// holds, and reaches every ready PE with probability 1.
pub struct RandomWalkScheduler {
    n: usize,
    max_steps: u64,
    state: Mutex<Walk>,
    cv: Condvar,
}

impl RandomWalkScheduler {
    pub fn new(n_pes: usize, seed: u64, max_steps: u64) -> RandomWalkScheduler {
        RandomWalkScheduler {
            n: n_pes,
            max_steps,
            state: Mutex::new(Walk {
                rng: StdRng::seed_from_u64(seed),
                ready: vec![false; n_pes],
                registered: 0,
                current: None,
                steps: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Scheduling decisions made so far (for reporting/diagnostics).
    pub fn steps(&self) -> u64 {
        self.state.lock().steps
    }

    fn wait_for_token(&self, rank: usize, state: &mut parking_lot::MutexGuard<'_, Walk>) {
        while !state.poisoned && state.current != Some(rank) {
            self.cv.wait(state);
        }
    }
}

impl Scheduler for RandomWalkScheduler {
    fn register(&self, rank: usize) {
        let mut state = self.state.lock();
        assert!(!state.ready[rank], "PE {rank} registered twice");
        state.ready[rank] = true;
        state.registered += 1;
        // The first token is granted only once every PE is present, so the
        // walk never depends on OS spawn timing.
        if state.registered == self.n {
            state.grant_next();
            self.cv.notify_all();
        }
        self.wait_for_token(rank, &mut state);
    }

    fn yield_point(&self, rank: usize, _point: SchedPoint) {
        let mut state = self.state.lock();
        if state.poisoned {
            return; // free-run so every PE can unwind
        }
        debug_assert_eq!(
            state.current,
            Some(rank),
            "PE {rank} yielded without holding the token"
        );
        state.steps += 1;
        if state.steps > self.max_steps {
            state.poisoned = true;
            self.cv.notify_all();
            drop(state);
            panic!(
                "schedule exceeded {} steps without terminating: \
                 livelock or deadlock under this schedule",
                self.max_steps
            );
        }
        state.grant_next();
        if state.current != Some(rank) {
            self.cv.notify_all();
            self.wait_for_token(rank, &mut state);
        }
    }

    fn finished(&self, rank: usize) {
        let mut state = self.state.lock();
        state.ready[rank] = false;
        if state.poisoned {
            return;
        }
        if state.current == Some(rank) {
            state.grant_next();
            self.cv.notify_all();
        }
    }

    fn poison(&self) {
        let mut state = self.state.lock();
        state.poisoned = true;
        state.current = None;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    /// Drive n threads through k yields each and record the global order of
    /// (rank, iteration) events the token serializes.
    fn record_walk(n: usize, k: usize, seed: u64) -> Vec<(usize, usize)> {
        let sched = Arc::new(RandomWalkScheduler::new(n, seed, 1_000_000));
        let log = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let sched = Arc::clone(&sched);
                let log = Arc::clone(&log);
                thread::spawn(move || {
                    sched.register(rank);
                    for i in 0..k {
                        log.lock().push((rank, i));
                        sched.yield_point(rank, SchedPoint::Poll);
                    }
                    sched.finished(rank);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        Arc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = record_walk(4, 25, 7);
        let b = record_walk(4, 25, 7);
        assert_eq!(a, b, "a seed must name exactly one schedule");
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = record_walk(4, 25, 1);
        let b = record_walk(4, 25, 2);
        assert_ne!(a, b, "distinct seeds should explore distinct schedules");
    }

    #[test]
    fn serialization_means_no_concurrent_critical_sections() {
        let n = 4;
        let sched = Arc::new(RandomWalkScheduler::new(n, 3, 1_000_000));
        let inside = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let sched = Arc::clone(&sched);
                let inside = Arc::clone(&inside);
                thread::spawn(move || {
                    sched.register(rank);
                    for _ in 0..50 {
                        // Between two yields exactly one PE may be here.
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        sched.yield_point(rank, SchedPoint::Put);
                    }
                    sched.finished(rank);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn step_budget_turns_livelock_into_panic() {
        let sched = Arc::new(RandomWalkScheduler::new(2, 0, 200));
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let sched = Arc::clone(&sched);
                thread::spawn(move || {
                    sched.register(rank);
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        loop {
                            sched.yield_point(rank, SchedPoint::Poll);
                            // Real callers check world poisoning after each
                            // yield; mimic that so the surviving PE unwinds.
                            assert!(!sched.state.lock().poisoned, "poisoned");
                        }
                    }));
                    sched.finished(rank);
                    r.is_err()
                })
            })
            .collect();
        let unwound: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            unwound.contains(&true),
            "one PE must report the budget overrun"
        );
    }

    #[test]
    fn poison_releases_blocked_threads() {
        let sched = Arc::new(RandomWalkScheduler::new(3, 5, 1_000_000));
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let sched = Arc::clone(&sched);
                thread::spawn(move || {
                    // PE 2 never registers, so both block in register()
                    // until poison releases them.
                    sched.register(rank);
                    sched.finished(rank);
                })
            })
            .collect();
        thread::sleep(std::time::Duration::from_millis(20));
        sched.poison();
        for h in handles {
            h.join().unwrap();
        }
    }
}
