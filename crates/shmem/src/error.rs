//! Error types for the SHMEM substrate.

/// Errors surfaced by symmetric-memory and SPMD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmemError {
    /// A PE rank outside `0..n_pes`.
    InvalidPe { pe: usize, n_pes: usize },
    /// A transfer exceeded the bounds of the target symmetric region.
    OutOfBounds {
        offset: usize,
        len: usize,
        region_len: usize,
    },
    /// A [`crate::Grid`] with zero nodes or zero PEs per node.
    EmptyGrid,
    /// One or more SPMD PE threads panicked; the message of the first is kept.
    PePanicked { pe: usize, message: String },
    /// A collective was invoked with inconsistent arguments across PEs
    /// (e.g. different lengths in `alloc_sym`).
    CollectiveMismatch(String),
    /// A checkpoint was requested at a non-quiescent cut: some PE still
    /// had non-blocking puts pending (issue a [`crate::Pe::quiet`] or
    /// barrier first). The cut would not be globally consistent.
    CheckpointNotQuiescent { pending_nbi: usize },
    /// The recovery policy restarted the run `attempts` times and every
    /// attempt failed; the last failure is kept.
    RetriesExhausted {
        attempts: u32,
        pe: usize,
        message: String,
    },
    /// A transport carry did not fit its (src,dst) ring mailbox: the
    /// framed size `needed` exceeded the `available` free bytes (or the
    /// whole `ring_bytes` capacity). Raise
    /// [`crate::transport::IpcConfig::ring_bytes`] or flush more often.
    SegmentExhausted {
        needed: usize,
        available: usize,
        ring_bytes: usize,
    },
    /// A transport rendezvous (worker join, process barrier, endpoint
    /// recv) timed out after `waited_ms` — surfaced as a typed error
    /// instead of a hang.
    TransportRendezvous { waited_ms: u64, detail: String },
    /// Transport construction or control-plane plumbing failed
    /// (segment creation, socket setup, malformed handshake).
    TransportSetup(String),
}

impl std::fmt::Display for ShmemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmemError::InvalidPe { pe, n_pes } => {
                write!(f, "PE {pe} out of range (grid has {n_pes} PEs)")
            }
            ShmemError::OutOfBounds {
                offset,
                len,
                region_len,
            } => write!(
                f,
                "transfer [{offset}, {}) exceeds symmetric region of length {region_len}",
                offset + len
            ),
            ShmemError::EmptyGrid => write!(f, "grid must have at least one node and one PE"),
            ShmemError::PePanicked { pe, message } => {
                write!(f, "PE {pe} panicked: {message}")
            }
            ShmemError::CollectiveMismatch(m) => write!(f, "collective mismatch: {m}"),
            ShmemError::CheckpointNotQuiescent { pending_nbi } => write!(
                f,
                "checkpoint rejected: cut is not quiescent ({pending_nbi} non-blocking puts pending)"
            ),
            ShmemError::RetriesExhausted {
                attempts,
                pe,
                message,
            } => write!(
                f,
                "recovery exhausted after {attempts} attempts; last failure on PE {pe}: {message}"
            ),
            ShmemError::SegmentExhausted {
                needed,
                available,
                ring_bytes,
            } => write!(
                f,
                "transport ring mailbox exhausted: frame needs {needed} bytes, {available} free \
                 (capacity {ring_bytes})"
            ),
            ShmemError::TransportRendezvous { waited_ms, detail } => {
                write!(f, "transport rendezvous timed out after {waited_ms} ms: {detail}")
            }
            ShmemError::TransportSetup(m) => write!(f, "transport setup failed: {m}"),
        }
    }
}

impl std::error::Error for ShmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ShmemError::OutOfBounds {
            offset: 10,
            len: 5,
            region_len: 12,
        };
        assert!(e.to_string().contains("[10, 15)"));
        assert!(e.to_string().contains("12"));
        let e = ShmemError::InvalidPe { pe: 9, n_pes: 4 };
        assert!(e.to_string().contains("PE 9"));
    }
}
