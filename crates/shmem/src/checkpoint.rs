//! Superstep-boundary checkpoints of the symmetric state.
//!
//! A [`Checkpoint`] is a deep copy of everything the substrate owns on
//! behalf of the application: every live [`crate::SymmetricVec`] region,
//! every [`crate::SymmetricAtomicVec`] region, and the per-PE network
//! ledger. Capture and restore are *collective* operations taken at a
//! quiescent cut — all PEs inside the rendezvous, no non-blocking put
//! pending, conveyors drained — which is what makes the copy globally
//! consistent without any marker propagation: the barrier in the
//! collective IS the cut.
//!
//! Allocations register themselves here at creation time (inside the
//! allocation collective, so registration order is deterministic and
//! identical on every PE). A checkpoint holds strong references to the
//! allocations it captured, so restore never has to guess which snapshot
//! belongs to which allocation.
//!
//! Everything in this file is cold-path: it runs at superstep boundaries,
//! never per message, so the mutexes below cannot perturb the conveyor
//! hot path's zero-lock-acquisition contract.

use std::any::Any;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::net::{NetLedger, NetStats};

/// A checkpointable allocation: deep-copy out, write back in.
///
/// Implementations run only inside a collective cut, so they may assume no
/// PE is concurrently mutating the regions through application operations.
pub(crate) trait CheckpointTarget: Send + Sync {
    /// Deep-copy the allocation's current contents.
    fn capture(&self) -> Box<dyn Any + Send + Sync>;
    /// Overwrite the allocation from a snapshot produced by `capture`.
    fn restore(&self, snapshot: &(dyn Any + Send + Sync));
}

/// A consistent snapshot of the symmetric state at one superstep boundary.
pub struct Checkpoint {
    superstep: u64,
    /// Each captured allocation with its snapshot. Holding the `Arc` pins
    /// the allocation, so the pairing stays valid for restore.
    snapshots: Vec<(Arc<dyn CheckpointTarget>, Box<dyn Any + Send + Sync>)>,
    /// Per-PE network ledger at the cut.
    net: Vec<NetStats>,
}

impl Checkpoint {
    /// The superstep this checkpoint was taken at.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// Number of symmetric allocations captured.
    pub fn allocations(&self) -> usize {
        self.snapshots.len()
    }

    /// The per-PE network statistics frozen in this checkpoint.
    pub fn net_stats(&self, pe: usize) -> NetStats {
        self.net[pe]
    }
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("superstep", &self.superstep)
            .field("allocations", &self.snapshots.len())
            .finish()
    }
}

/// Per-world checkpoint machinery: the target registry, the most recent
/// checkpoint, and the capture counter feeding the recovery log.
#[derive(Default)]
pub(crate) struct CheckpointState {
    targets: Mutex<Vec<Weak<dyn CheckpointTarget>>>,
    latest: Mutex<Option<Arc<Checkpoint>>>,
    taken: Mutex<u64>,
}

impl CheckpointState {
    /// Register a live allocation. Called from inside the allocation
    /// collective's combine closure, so it runs exactly once per
    /// allocation, in deterministic order.
    pub(crate) fn register(&self, target: Weak<dyn CheckpointTarget>) {
        self.targets.lock().push(target);
    }

    /// Deep-copy every live allocation plus the network ledger. Runs once
    /// per checkpoint, on the final arriver of the checkpoint collective.
    pub(crate) fn capture(&self, superstep: u64, ledger: &NetLedger) -> Arc<Checkpoint> {
        let mut targets = self.targets.lock();
        // Prune allocations that have been dropped since the last capture.
        targets.retain(|w| w.strong_count() > 0);
        let snapshots = targets
            .iter()
            .filter_map(Weak::upgrade)
            .map(|t| {
                let snap = t.capture();
                (t, snap)
            })
            .collect();
        drop(targets);
        let ckpt = Arc::new(Checkpoint {
            superstep,
            snapshots,
            net: ledger.snapshot_all(),
        });
        *self.latest.lock() = Some(ckpt.clone());
        *self.taken.lock() += 1;
        ckpt
    }

    /// Write `ckpt` back into its allocations and the ledger. Runs once
    /// per restore, on the final arriver of the restore collective.
    pub(crate) fn restore(&self, ckpt: &Arc<Checkpoint>, ledger: &NetLedger) {
        for (target, snap) in &ckpt.snapshots {
            target.restore(&**snap);
        }
        ledger.restore_all(&ckpt.net);
        *self.latest.lock() = Some(ckpt.clone());
    }

    /// The most recent checkpoint (captured or restored-to), if any.
    pub(crate) fn latest(&self) -> Option<Arc<Checkpoint>> {
        self.latest.lock().clone()
    }

    /// Checkpoints captured so far in this world.
    pub(crate) fn taken(&self) -> u64 {
        *self.taken.lock()
    }
}

#[cfg(test)]
mod tests {
    use crate::error::ShmemError;
    use crate::grid::Grid;
    use crate::spmd;

    #[test]
    fn capture_restore_roundtrip() {
        let grid = Grid::new(2, 1).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u64>(2);
            let sig = pe.alloc_sym_atomic(1);
            sym.write_local(pe, |v| v.fill(pe.rank() as u64 + 1));
            sig.store(pe, pe.rank(), 0, 7).unwrap();
            pe.barrier_all();
            let ckpt = pe.checkpoint().unwrap();
            assert_eq!(ckpt.allocations(), 2);
            // Scribble over everything, then restore the cut.
            sym.write_local(pe, |v| v.fill(99));
            sig.store(pe, pe.rank(), 0, 0).unwrap();
            pe.barrier_all();
            pe.restore_checkpoint(&ckpt).unwrap();
            assert_eq!(
                sym.read_local(pe, |v| v.to_vec()),
                vec![pe.rank() as u64 + 1; 2]
            );
            assert_eq!(sig.local_load(pe, 0), 7);
            let latest = pe.latest_checkpoint().expect("restore keeps latest");
            assert_eq!(latest.superstep(), ckpt.superstep());
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn non_quiescent_checkpoint_is_rejected() {
        let grid = Grid::new(2, 1).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u64>(1);
            if pe.rank() == 0 {
                sym.put_nbi(pe, 1, 0, &[5]).unwrap();
            }
            // One PE's pending nbi poisons the cut for everyone.
            // analyzer: allow(checkpoint-not-quiesced): deliberate negative litmus — asserts the runtime rejects this cut
            let err = pe.checkpoint().unwrap_err();
            assert_eq!(err, ShmemError::CheckpointNotQuiescent { pending_nbi: 1 });
            assert!(pe.latest_checkpoint().is_none(), "nothing was captured");
            pe.quiet();
            assert!(pe.checkpoint().is_ok(), "quiet cut must be accepted");
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn dropped_allocations_are_pruned() {
        let grid = Grid::single_node(2).unwrap();
        spmd::run(grid, |pe| {
            let keep = pe.alloc_sym::<u32>(1);
            {
                let _drop_me = pe.alloc_sym::<u32>(1);
                pe.barrier_all();
            }
            pe.barrier_all();
            let ckpt = pe.checkpoint().unwrap();
            assert_eq!(ckpt.allocations(), 1, "dead allocation must be pruned");
            keep.local_set(pe, 0, 3);
            pe.barrier_all();
        })
        .unwrap();
    }
}
