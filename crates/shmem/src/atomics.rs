//! Symmetric atomics: remote fetch-add/store/load and signal waiting.
//!
//! OpenSHMEM atomic memory operations (`shmem_atomic_fetch_add`,
//! `shmem_atomic_set`, …) are how Conveyors signals buffer delivery after a
//! `quiet` (the trailing `shmem_put` of `nonblock_progress`) and how PEs
//! implement credit/ack protocols. Unlike [`crate::SymmetricVec`], these are
//! immediately visible and lock-free.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use crate::checkpoint::CheckpointTarget;
use crate::error::ShmemError;
use crate::grid::Grid;
use crate::net::TransferClass;
use crate::pe::Pe;
use crate::sched::SchedPoint;

struct AtomicInner {
    len: usize,
    grid: Grid,
    regions: Vec<Box<[AtomicU64]>>,
    /// Allocation identity for the race detector's location map.
    #[cfg(feature = "race-detect")]
    race_id: u64,
}

/// Deep-copy in/out for checkpoints; runs only inside a collective cut.
impl CheckpointTarget for AtomicInner {
    fn capture(&self) -> Box<dyn Any + Send + Sync> {
        let copy: Vec<Vec<u64>> = self
            .regions
            .iter()
            // Acquire: pairs with remote writers' Release stores, so the
            // snapshot sees every value published before the cut.
            .map(|r| r.iter().map(|a| a.load(Ordering::Acquire)).collect())
            .collect();
        Box::new(copy)
    }

    fn restore(&self, snapshot: &(dyn Any + Send + Sync)) {
        let copy = snapshot
            .downcast_ref::<Vec<Vec<u64>>>()
            .expect("checkpoint snapshot type mismatch for SymmetricAtomicVec");
        for (region, saved) in self.regions.iter().zip(copy) {
            for (slot, v) in region.iter().zip(saved) {
                // Release: publishes the restored values to PEs that later
                // acquire them, mirroring a normal signal write.
                slot.store(*v, Ordering::Release);
            }
        }
    }
}

/// A symmetric array of `u64` atomics, one region per PE.
///
/// Clone is shallow (all clones refer to the same symmetric allocation).
pub struct SymmetricAtomicVec {
    inner: Arc<AtomicInner>,
}

impl Clone for SymmetricAtomicVec {
    fn clone(&self) -> Self {
        SymmetricAtomicVec {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl SymmetricAtomicVec {
    /// Collectively allocate `len` zero-initialized atomics per PE.
    ///
    /// Prefer [`Pe::alloc_sym_atomic`] at call sites.
    pub fn new(pe: &Pe, len: usize) -> Result<SymmetricAtomicVec, ShmemError> {
        let grid = pe.grid();
        let world = pe.world_arc();
        let arc = pe.run_collective(
            len,
            move |lens| -> Result<SymmetricAtomicVec, ShmemError> {
                if lens.iter().any(|&l| l != lens[0]) {
                    return Err(ShmemError::CollectiveMismatch(format!(
                        "alloc_sym_atomic lengths differ across PEs: {lens:?}"
                    )));
                }
                let regions = (0..grid.n_pes())
                    .map(|_| {
                        (0..lens[0])
                            .map(|_| AtomicU64::new(0))
                            .collect::<Vec<_>>()
                            .into_boxed_slice()
                    })
                    .collect();
                let inner = Arc::new(AtomicInner {
                    len: lens[0],
                    grid,
                    regions,
                    #[cfg(feature = "race-detect")]
                    race_id: crate::race::next_alloc_id(),
                });
                // Register once per allocation, in deterministic order (see
                // SymmetricVec::new).
                world
                    .checkpoint
                    .register(Arc::downgrade(&inner) as Weak<dyn CheckpointTarget>);
                Ok(SymmetricAtomicVec { inner })
            },
        );
        (*arc).clone()
    }

    /// Length of each PE's region.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the per-PE regions are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    fn check(&self, pe: usize, index: usize) -> Result<(), ShmemError> {
        self.inner.grid.check_pe(pe)?;
        if index >= self.inner.len {
            return Err(ShmemError::OutOfBounds {
                offset: index,
                len: 1,
                region_len: self.inner.len,
            });
        }
        Ok(())
    }

    /// The detector's name for `owner_pe`'s element.
    #[cfg(feature = "race-detect")]
    fn loc(&self, owner_pe: usize, index: usize) -> crate::race::Loc {
        crate::race::Loc {
            alloc: self.inner.race_id,
            owner: owner_pe,
            index,
        }
    }

    /// Atomic fetch-add on `dst_pe`'s element (`shmem_atomic_fetch_add`).
    pub fn fetch_add(
        &self,
        pe: &Pe,
        dst_pe: usize,
        index: usize,
        value: u64,
    ) -> Result<u64, ShmemError> {
        self.check(dst_pe, index)?;
        pe.sched_point(SchedPoint::Atomic);
        if dst_pe != pe.rank() {
            // Off-rank AMOs traverse the modeled (possibly flaky) NIC.
            pe.net_attempt(TransferClass::Atomic);
            if !pe.same_node_as(dst_pe) {
                // 16-byte AMO command frame: target element + operand.
                pe.carry(
                    dst_pe,
                    TransferClass::Atomic,
                    crate::transport::payload_bytes(&[index as u64, value]),
                )?;
            }
        }
        let slot = &self.inner.regions[dst_pe][index];
        #[cfg(feature = "race-detect")]
        let prev = match pe.race_detector() {
            Some(d) => d.sync_rmw(pe.rank(), self.loc(dst_pe, index), || {
                slot.fetch_add(value, Ordering::AcqRel)
            }),
            None => slot.fetch_add(value, Ordering::AcqRel),
        };
        #[cfg(not(feature = "race-detect"))]
        let prev = slot.fetch_add(value, Ordering::AcqRel);
        if dst_pe != pe.rank() {
            pe.record_net(TransferClass::Atomic, 8);
        }
        Ok(prev)
    }

    /// Atomic store to `dst_pe`'s element (`shmem_atomic_set`).
    pub fn store(&self, pe: &Pe, dst_pe: usize, index: usize, value: u64) -> Result<(), ShmemError> {
        self.check(dst_pe, index)?;
        pe.sched_point(SchedPoint::Atomic);
        if dst_pe != pe.rank() {
            pe.net_attempt(TransferClass::Atomic);
            if !pe.same_node_as(dst_pe) {
                pe.carry(
                    dst_pe,
                    TransferClass::Atomic,
                    crate::transport::payload_bytes(&[index as u64, value]),
                )?;
            }
        }
        let slot = &self.inner.regions[dst_pe][index];
        #[cfg(feature = "race-detect")]
        match pe.race_detector() {
            Some(d) => d.sync_release(pe.rank(), self.loc(dst_pe, index), || {
                slot.store(value, Ordering::Release)
            }),
            None => slot.store(value, Ordering::Release),
        }
        #[cfg(not(feature = "race-detect"))]
        slot.store(value, Ordering::Release);
        if dst_pe != pe.rank() {
            pe.record_net(TransferClass::Atomic, 8);
        }
        Ok(())
    }

    /// Atomic load of `src_pe`'s element (`shmem_atomic_fetch`).
    pub fn load(&self, pe: &Pe, src_pe: usize, index: usize) -> Result<u64, ShmemError> {
        self.check(src_pe, index)?;
        pe.sched_point(SchedPoint::Atomic);
        if src_pe != pe.rank() {
            pe.net_attempt(TransferClass::Atomic);
            if !pe.same_node_as(src_pe) {
                // 8-byte fetch request frame naming the element.
                pe.carry(
                    src_pe,
                    TransferClass::Atomic,
                    crate::transport::payload_bytes(&[index as u64]),
                )?;
            }
        }
        let slot = &self.inner.regions[src_pe][index];
        #[cfg(feature = "race-detect")]
        let v = match pe.race_detector() {
            Some(d) => d.sync_acquire(pe.rank(), self.loc(src_pe, index), || {
                slot.load(Ordering::Acquire)
            }),
            None => slot.load(Ordering::Acquire),
        };
        #[cfg(not(feature = "race-detect"))]
        let v = slot.load(Ordering::Acquire);
        if src_pe != pe.rank() {
            pe.record_net(TransferClass::Atomic, 8);
        }
        Ok(v)
    }

    /// Load from the calling PE's own region without traffic accounting.
    #[inline]
    pub fn local_load(&self, pe: &Pe, index: usize) -> u64 {
        let slot = &self.inner.regions[pe.rank()][index];
        #[cfg(feature = "race-detect")]
        if let Some(d) = pe.race_detector() {
            return d.sync_acquire(pe.rank(), self.loc(pe.rank(), index), || {
                slot.load(Ordering::Acquire)
            });
        }
        slot.load(Ordering::Acquire)
    }

    /// Spin until `pred` holds on the calling PE's own element
    /// (`shmem_wait_until`), yielding cooperatively. Returns the value that
    /// satisfied the predicate. Panics (unwinds) if the world is poisoned,
    /// so a crash elsewhere cannot hang this PE.
    pub fn wait_until(&self, pe: &Pe, index: usize, pred: impl Fn(u64) -> bool) -> u64 {
        let slot = &self.inner.regions[pe.rank()][index];
        loop {
            #[cfg(feature = "race-detect")]
            let v = match pe.race_detector() {
                Some(d) => d.sync_acquire(pe.rank(), self.loc(pe.rank(), index), || {
                    slot.load(Ordering::Acquire)
                }),
                None => slot.load(Ordering::Acquire),
            };
            #[cfg(not(feature = "race-detect"))]
            let v = slot.load(Ordering::Acquire);
            if pred(v) {
                return v;
            }
            pe.poll_yield();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd;

    #[test]
    fn fetch_add_serializes_concurrent_updates() {
        let grid = Grid::single_node(8).unwrap();
        spmd::run(grid, |pe| {
            let counters = pe.alloc_sym_atomic(1);
            // everyone hammers PE 0's counter
            for _ in 0..100 {
                counters.fetch_add(pe, 0, 0, 1).unwrap();
            }
            pe.barrier_all();
            if pe.rank() == 0 {
                assert_eq!(counters.local_load(pe, 0), 800);
            }
        })
        .unwrap();
    }

    #[test]
    fn wait_until_observes_remote_store() {
        let grid = Grid::new(2, 1).unwrap();
        spmd::run(grid, |pe| {
            let sig = pe.alloc_sym_atomic(1);
            if pe.rank() == 0 {
                sig.store(pe, 1, 0, 99).unwrap();
            } else {
                let v = sig.wait_until(pe, 0, |v| v != 0);
                assert_eq!(v, 99);
            }
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn remote_atomics_are_counted_local_are_not() {
        let grid = Grid::single_node(2).unwrap();
        spmd::run(grid, |pe| {
            let a = pe.alloc_sym_atomic(1);
            if pe.rank() == 0 {
                a.fetch_add(pe, 0, 0, 1).unwrap(); // local: uncounted
                a.fetch_add(pe, 1, 0, 1).unwrap(); // remote: counted
                a.load(pe, 1, 0).unwrap(); // remote: counted
                let s = pe.net_stats();
                assert_eq!(s.atomic.ops, 2);
                assert_eq!(s.atomic.bytes, 16);
            }
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn bounds_are_checked() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let a = pe.alloc_sym_atomic(2);
            assert!(a.fetch_add(pe, 0, 2, 1).is_err());
            assert!(a.store(pe, 1, 0, 1).is_err());
        })
        .unwrap();
    }
}
