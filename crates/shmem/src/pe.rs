//! The per-thread PE handle and the shared world.
//!
//! [`Pe`] is what SPMD code receives: it identifies the calling processing
//! element, carries its deferred non-blocking-put queue, and is the
//! capability through which all symmetric-memory and collective operations
//! run. It is deliberately `!Sync`/`!Send` — a PE handle belongs to exactly
//! one thread, just as an OpenSHMEM PE is one process.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use fabsp_hwpc::cost::model;
use fabsp_telemetry::{Counter, Hist, PeMetrics, TelemetryRegistry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::checkpoint::{Checkpoint, CheckpointState};
use crate::error::ShmemError;
use crate::grid::Grid;
use crate::net::{FaultSpec, NetLedger, NetStats, TransferClass};
use crate::sched::{SchedPoint, Scheduler};
use crate::sync::{PoisonBarrier, Rendezvous};
use crate::transport::{FaultEvent, TransportHandle, TransportKind, TransportSpec, TransportStats};

/// Shared state of one SPMD execution.
pub(crate) struct World {
    pub(crate) grid: Grid,
    pub(crate) barrier: PoisonBarrier,
    pub(crate) rendezvous: Rendezvous,
    pub(crate) ledger: NetLedger,
    pub(crate) poisoned: AtomicBool,
    /// Serializing scheduler, if this run is under deterministic control.
    pub(crate) sched: Option<Arc<dyn Scheduler>>,
    pub(crate) faults: FaultSpec,
    /// Always-on runtime telemetry. `None` only when a harness explicitly
    /// disabled it (A/B overhead measurement).
    pub(crate) telemetry: Option<Arc<TelemetryRegistry>>,
    /// Checkpoint registry and latest-checkpoint store.
    pub(crate) checkpoint: CheckpointState,
    /// Auto-checkpoint period in supersteps (facade `checkpoint_every`).
    pub(crate) checkpoint_every: Option<u64>,
    /// Which SPMD attempt this world belongs to (0 = initial run). Kill
    /// faults fire on attempt 0 only, modeling a replaced node.
    pub(crate) attempt: u32,
    /// High-water superstep count over all PEs, for the recovery log's
    /// wasted-superstep accounting.
    pub(crate) superstep_high: AtomicU64,
    /// Network operations re-attempted after injected transient timeouts.
    pub(crate) net_retries: AtomicU64,
    /// Backend carrying this world's cross-node traffic. `InProc` hooks
    /// are no-ops behind one discriminant check (hot-path gated).
    pub(crate) transport: TransportHandle,
    /// Happens-before race detector, when this run checks its schedules.
    #[cfg(feature = "race-detect")]
    pub(crate) race: Option<Arc<crate::race::Detector>>,
}

impl World {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_harness(
        grid: Grid,
        sched: Option<Arc<dyn Scheduler>>,
        faults: FaultSpec,
        telemetry: Option<Arc<TelemetryRegistry>>,
        checkpoint_every: Option<u64>,
        attempt: u32,
        transport: TransportSpec,
    ) -> Arc<World> {
        if let Some(reg) = &telemetry {
            assert_eq!(
                reg.n_pes(),
                grid.n_pes(),
                "telemetry registry sized for a different PE count"
            );
        }
        // A fresh backend per attempt: a restart models a replaced node,
        // so carried-frame state from the dead attempt must not leak in.
        let transport = TransportHandle::new(transport, grid.n_pes())
            .expect("transport backend construction");
        Arc::new(World {
            grid,
            barrier: PoisonBarrier::new(grid.n_pes()),
            rendezvous: Rendezvous::new(grid.n_pes()),
            ledger: NetLedger::new(grid.n_pes()),
            poisoned: AtomicBool::new(false),
            sched,
            faults,
            telemetry,
            checkpoint: CheckpointState::default(),
            checkpoint_every,
            attempt,
            superstep_high: AtomicU64::new(0),
            net_retries: AtomicU64::new(0),
            transport,
            #[cfg(feature = "race-detect")]
            race: None,
        })
    }

    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        if let Some(sched) = &self.sched {
            sched.poison();
        }
        self.barrier.poison();
        self.rendezvous.poison();
    }

    pub(crate) fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "SPMD world poisoned: another PE panicked"
        );
    }
}

/// A deferred non-blocking put, applied at the next [`Pe::quiet`].
pub(crate) struct PendingPut {
    pub(crate) apply: Box<dyn FnOnce()>,
    pub(crate) bytes: usize,
    /// Fence epoch the put was issued in; fault-injected reordering only
    /// permutes puts within one epoch ([`Pe::fence`] bumps it).
    pub(crate) epoch: u64,
}

/// Handle to one processing element, passed to the SPMD closure.
pub struct Pe {
    rank: usize,
    world: Arc<World>,
    collective_seq: Cell<u64>,
    pending: RefCell<Vec<PendingPut>>,
    fence_epoch: Cell<u64>,
    quiet_seq: Cell<u64>,
    /// Supersteps begun on this PE (bumped by [`Pe::begin_superstep`]).
    superstep: Cell<u64>,
    /// Per-PE splitmix64 state for transient-failure injection; zero when
    /// the fault plan has no flaky network.
    flaky_state: Cell<u64>,
}

impl Pe {
    pub(crate) fn new(rank: usize, world: Arc<World>) -> Pe {
        let flaky_state = world
            .faults
            .flaky
            .map_or(0, |f| f.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        Pe {
            rank,
            world,
            collective_seq: Cell::new(0),
            pending: RefCell::new(Vec::new()),
            fence_epoch: Cell::new(0),
            quiet_seq: Cell::new(0),
            superstep: Cell::new(0),
            flaky_state: Cell::new(flaky_state),
        }
    }

    /// This PE's global rank (OpenSHMEM `shmem_my_pe`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of PEs (OpenSHMEM `shmem_n_pes`).
    #[inline]
    pub fn n_pes(&self) -> usize {
        self.world.grid.n_pes()
    }

    /// The PE/node layout.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.world.grid
    }

    /// The node hosting this PE.
    #[inline]
    pub fn node(&self) -> usize {
        self.world.grid.node_of(self.rank)
    }

    /// This PE's index within its node.
    #[inline]
    pub fn local_index(&self) -> usize {
        self.world.grid.local_index(self.rank)
    }

    /// Whether `other` shares this PE's node.
    #[inline]
    pub fn same_node_as(&self, other: usize) -> bool {
        self.world.grid.same_node(self.rank, other)
    }

    /// Whether a deterministic [`Scheduler`] is driving
    /// this world. Scheduler yield points take the rendezvous mutex, so
    /// lock-freedom assertions about the message hot path only hold in
    /// free-running (OS-scheduled) worlds.
    #[inline]
    pub fn is_scheduled(&self) -> bool {
        self.world.sched.is_some()
    }

    /// Complete all outstanding non-blocking puts issued by this PE
    /// (OpenSHMEM `shmem_quiet`).
    ///
    /// After `quiet` returns, the data of every prior
    /// [`put_nbi`](crate::SymmetricVec::put_nbi) is visible at its target —
    /// and not before, which is the semantics the paper's `nonblock_progress`
    /// instrumentation captures. Returns the number of bytes flushed.
    pub fn quiet(&self) -> usize {
        let quiet_begin = fabsp_hwpc::cycles_now();
        self.sched_point(SchedPoint::Quiet);
        let mut pending = std::mem::take(&mut *self.pending.borrow_mut());
        if pending.is_empty() {
            self.note_quiet(quiet_begin);
            return 0;
        }
        let qseq = self.quiet_seq.get();
        self.quiet_seq.set(qseq + 1);
        if let Some(seed) = self.world.faults.nbi_shuffle_seed {
            // Between fences, OpenSHMEM leaves nbi puts unordered, so a
            // hostile-but-legal network may deliver them in any order.
            // Shuffle, then stable-sort by fence epoch so ordering across
            // fences is preserved. Seeded per (run, PE, quiet) so every
            // quiet explores a different permutation, deterministically.
            let mut rng = StdRng::seed_from_u64(
                seed ^ (self.rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ qseq.rotate_left(17),
            );
            pending.shuffle(&mut rng);
            pending.sort_by_key(|op| op.epoch);
        }
        let mut bytes = 0;
        for op in pending {
            bytes += op.bytes;
            // A non-blocking put meets the (possibly flaky) wire at quiet
            // time. Rolling the timeout/retry loop *before* applying keeps
            // the deferred closure — and with it the race detector's
            // nbi-pending mark — untouched until the final successful
            // attempt: a retried put_nbi stays invisible until quiet.
            self.net_attempt(TransferClass::NonBlockingPut);
            (op.apply)();
        }
        model::QUIET.charge();
        self.world
            .ledger
            .record(self.rank, TransferClass::Quiet, bytes);
        // Completion fence on the transport: drain whatever this PE's
        // carries staged (no-op on InProc; the threaded Ipc backend is
        // already drained, so this only bumps its flush counter).
        self.world
            .transport
            .flush(self.rank)
            .expect("transport flush at quiet");
        self.note_quiet(quiet_begin);
        bytes
    }

    /// Telemetry for one completed `quiet`: bump the counter and record the
    /// wall-cycle cost (including any scheduler idling, which is real time
    /// the caller spent inside the call).
    #[inline]
    fn note_quiet(&self, quiet_begin: u64) {
        if let Some(m) = self.metrics() {
            m.count(Counter::ShmemQuiets);
            m.observe(
                Hist::QuietCycles,
                fabsp_hwpc::cycles_now().saturating_sub(quiet_begin),
            );
        }
    }

    /// Order non-blocking puts (OpenSHMEM `shmem_fence`): puts issued
    /// before the fence are delivered before puts issued after it, even
    /// under fault-injected delivery reordering. Completion is still only
    /// guaranteed by [`quiet`](Pe::quiet).
    ///
    /// The substrate applies pending puts in issue order anyway, so without
    /// fault injection this is purely an observable scheduling point.
    pub fn fence(&self) {
        self.sched_point(SchedPoint::Fence);
        self.fence_epoch.set(self.fence_epoch.get() + 1);
    }

    /// Number of non-blocking puts issued but not yet completed by `quiet`.
    pub fn pending_nbi(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Barrier across all PEs (OpenSHMEM `shmem_barrier_all`).
    /// Implies [`quiet`](Pe::quiet), as the OpenSHMEM specification requires.
    pub fn barrier_all(&self) {
        self.quiet();
        self.world.transport.rendezvous_note(self.rank);
        let wait_begin = fabsp_hwpc::cycles_now();
        // Arrive strictly before the physical wait and depart strictly
        // after it, so every departer's clock covers every arriver's.
        #[cfg(feature = "race-detect")]
        if let Some(d) = self.race_detector() {
            d.barrier_arrive(self.rank);
        }
        match &self.world.sched {
            None => self.world.barrier.wait(),
            Some(sched) => {
                // Under a serializing scheduler a condvar sleep would hold
                // the execution token forever; poll instead, yielding the
                // token between checks.
                sched.yield_point(self.rank, SchedPoint::Barrier);
                self.world.check_poison();
                self.world.barrier.wait_with_idle(&|| {
                    sched.yield_point(self.rank, SchedPoint::Barrier);
                    self.world.check_poison();
                });
            }
        }
        #[cfg(feature = "race-detect")]
        if let Some(d) = self.race_detector() {
            d.barrier_depart(self.rank);
        }
        if let Some(m) = self.metrics() {
            m.count(Counter::ShmemBarrierWaits);
            m.observe(
                Hist::BarrierWaitCycles,
                fabsp_hwpc::cycles_now().saturating_sub(wait_begin),
            );
        }
    }

    /// Cooperatively yield while polling: checks for world poisoning so a
    /// panic on another PE does not leave this one spinning forever.
    pub fn poll_yield(&self) {
        self.world.check_poison();
        match &self.world.sched {
            None => std::thread::yield_now(),
            Some(sched) => {
                sched.yield_point(self.rank, SchedPoint::Poll);
                self.world.check_poison();
            }
        }
    }

    /// Hit an observable scheduling point (no-op without a scheduler).
    #[inline]
    pub(crate) fn sched_point(&self, point: SchedPoint) {
        if let Some(sched) = &self.world.sched {
            sched.yield_point(self.rank, point);
            self.world.check_poison();
        }
    }

    /// Run collective number `next_collective_seq()` through the world
    /// rendezvous, idling scheduler-aware while other PEs arrive.
    pub(crate) fn run_collective<T, R>(
        &self,
        value: T,
        combine: impl FnOnce(Vec<T>) -> R,
    ) -> Arc<R>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
    {
        let seq = self.next_collective_seq();
        self.world.transport.rendezvous_note(self.rank);
        self.sched_point(SchedPoint::Collective);
        // Rendezvous arrival/departure bracket the physical wait, like the
        // barrier's: collectives are full synchronization points.
        #[cfg(feature = "race-detect")]
        if let Some(d) = self.race_detector() {
            d.collective_arrive(self.rank);
        }
        let out = match &self.world.sched {
            None => self
                .world
                .rendezvous
                .collective(seq, self.rank, value, combine),
            Some(sched) => self.world.rendezvous.collective_with_idle(
                seq,
                self.rank,
                value,
                combine,
                Some(&|| {
                    sched.yield_point(self.rank, SchedPoint::Collective);
                    self.world.check_poison();
                }),
            ),
        };
        #[cfg(feature = "race-detect")]
        if let Some(d) = self.race_detector() {
            d.collective_depart(self.rank);
        }
        out
    }

    /// Enter the next superstep and return its 0-based index. Called by the
    /// actor layer at the top of each selector execution; applications
    /// driving the substrate directly may call it around their own
    /// superstep loops to get kill injection and auto-checkpoint hooks.
    pub fn begin_superstep(&self) -> u64 {
        let ss = self.superstep.get();
        self.superstep.set(ss + 1);
        // Relaxed: a monotonic statistic, read by the launcher only after
        // every PE thread has been joined (the join is the sync edge).
        self.world.superstep_high.fetch_max(ss + 1, Ordering::Relaxed);
        ss
    }

    /// Supersteps begun on this PE so far.
    pub fn superstep(&self) -> u64 {
        self.superstep.get()
    }

    /// Leave superstep `superstep`. If the world's fault plan kills this
    /// rank at this superstep — and this is the initial attempt, a restart
    /// modeling a replaced node — the PE dies here, *after* the superstep's
    /// work, so the recovery log's wasted-superstep accounting is real.
    pub fn end_superstep(&self, superstep: u64) {
        if let Some(kill) = self.world.faults.kill {
            if self.world.attempt == 0
                && kill.rank as usize == self.rank
                && u64::from(kill.at_superstep) == superstep
            {
                // Route the death through the transport before dying so
                // both backends observe the same failure narrative (and
                // forked peers can abort instead of hanging).
                self.world.transport.note_fault(FaultEvent::Kill {
                    pe: self.rank as u32,
                    superstep: superstep as u32,
                });
                panic!(
                    "fault injection: kill_pe rank {} at superstep {superstep}",
                    self.rank
                );
            }
        }
    }

    /// Whether the harness' `checkpoint_every` period lands on `superstep`.
    pub fn checkpoint_due(&self, superstep: u64) -> bool {
        self.world
            .checkpoint_every
            .is_some_and(|n| n > 0 && superstep.is_multiple_of(n))
    }

    /// Capture a checkpoint of all symmetric state at the current cut.
    ///
    /// Collective: every PE must call it at the same point. The cut must be
    /// quiescent — if any PE still has non-blocking puts pending, all PEs
    /// get [`ShmemError::CheckpointNotQuiescent`] and nothing is captured.
    pub fn checkpoint(&self) -> Result<Arc<Checkpoint>, ShmemError> {
        let begin = fabsp_hwpc::cycles_now();
        let world = self.world.clone();
        let superstep = self.superstep.get();
        let result = self.run_collective(
            self.pending_nbi(),
            move |pending: Vec<usize>| -> Result<Arc<Checkpoint>, ShmemError> {
                let total: usize = pending.iter().sum();
                // The transport must also be drained: an undelivered
                // carried frame would make the cut inconsistent.
                if total > 0 || !world.transport.quiescent() {
                    return Err(ShmemError::CheckpointNotQuiescent { pending_nbi: total });
                }
                Ok(world.checkpoint.capture(superstep, &world.ledger))
            },
        );
        if let Some(m) = self.metrics() {
            m.observe(
                Hist::CheckpointCycles,
                fabsp_hwpc::cycles_now().saturating_sub(begin),
            );
        }
        (*result).clone()
    }

    /// Write `ckpt` back into every allocation it captured, plus the
    /// network ledger. Collective and quiescence-checked like
    /// [`checkpoint`](Pe::checkpoint).
    pub fn restore_checkpoint(&self, ckpt: &Arc<Checkpoint>) -> Result<(), ShmemError> {
        let world = self.world.clone();
        let ckpt = ckpt.clone();
        let result = self.run_collective(
            self.pending_nbi(),
            move |pending: Vec<usize>| -> Result<(), ShmemError> {
                let total: usize = pending.iter().sum();
                if total > 0 || !world.transport.quiescent() {
                    return Err(ShmemError::CheckpointNotQuiescent { pending_nbi: total });
                }
                world.checkpoint.restore(&ckpt, &world.ledger);
                Ok(())
            },
        );
        (*result).clone()
    }

    /// The most recent checkpoint of this world, if any was taken.
    pub fn latest_checkpoint(&self) -> Option<Arc<Checkpoint>> {
        self.world.checkpoint.latest()
    }

    /// The shared world, for allocation constructors that register
    /// checkpoint targets from inside their collective combine closures.
    pub(crate) fn world_arc(&self) -> Arc<World> {
        self.world.clone()
    }

    /// One modeled network operation under the fault plan's flaky network:
    /// each attempt times out with probability `drop_ppm / 1e6`; timed-out
    /// attempts retry after bounded exponential backoff (cooperative
    /// yields, so serialized schedules stay live). Exhausting the retry
    /// budget is a PE failure, routed to the recovery policy like any
    /// other panic. No-op without a flaky network.
    #[inline]
    pub(crate) fn net_attempt(&self, class: TransferClass) {
        let Some(flaky) = self.world.faults.flaky else {
            return;
        };
        if flaky.drop_ppm == 0 {
            return;
        }
        let mut attempt = 0u32;
        while self.flaky_timeout(flaky.drop_ppm) {
            attempt += 1;
            self.note_net_retry();
            assert!(
                attempt <= flaky.max_retries,
                "net timeout: {class:?} exceeded {} retries (injected transient failure)",
                flaky.max_retries
            );
            // Bounded exponential backoff: the modeled NIC re-arms after
            // 2^attempt cooperative yields (capped), each of which checks
            // for poisoning so a dead world cannot strand a retrier.
            for _ in 0..(1u32 << attempt.min(6)) {
                self.poll_yield();
            }
        }
    }

    /// Roll the per-PE deterministic splitmix64 stream: `true` = this
    /// attempt timed out.
    fn flaky_timeout(&self, drop_ppm: u32) -> bool {
        let s = self.flaky_state.get().wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.flaky_state.set(s);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % 1_000_000) < u64::from(drop_ppm)
    }

    #[inline]
    fn note_net_retry(&self) {
        // Relaxed: a statistic read by the launcher after joining threads.
        self.world.net_retries.fetch_add(1, Ordering::Relaxed);
        self.world.transport.note_fault(FaultEvent::Retry {
            pe: self.rank as u32,
        });
        if let Some(m) = self.metrics() {
            m.count(Counter::NetRetries);
        }
    }

    /// Network statistics attributed to this PE as a source.
    pub fn net_stats(&self) -> NetStats {
        self.world.ledger.pe_stats(self.rank)
    }

    /// Merged network statistics over all PEs. Only meaningful when other
    /// PEs are quiescent (e.g. right after [`barrier_all`](Pe::barrier_all)).
    pub fn world_net_stats(&self) -> NetStats {
        self.world.ledger.total()
    }

    pub(crate) fn next_collective_seq(&self) -> u64 {
        let seq = self.collective_seq.get();
        self.collective_seq.set(seq + 1);
        seq
    }

    pub(crate) fn push_pending(&self, bytes: usize, apply: Box<dyn FnOnce()>) {
        self.pending.borrow_mut().push(PendingPut {
            apply,
            bytes,
            epoch: self.fence_epoch.get(),
        });
    }

    /// Hand one cross-node transfer to the transport at initiation time.
    ///
    /// This is the carry-at-initiation contract (see [`crate::transport`]):
    /// it sits *after* the op's own scheduling point and fault roll, adds
    /// neither, and is a no-op behind one discriminant check on `InProc` —
    /// so schedules, traces, and digests are backend-invariant.
    #[inline]
    pub(crate) fn carry(
        &self,
        dst: usize,
        class: TransferClass,
        payload: &[std::mem::MaybeUninit<u8>],
    ) -> Result<(), ShmemError> {
        match &self.world.transport {
            TransportHandle::InProc => Ok(()),
            handle => {
                handle.carry(self.rank, dst, class, payload)?;
                if let Some(m) = self.metrics() {
                    m.count(Counter::TransportFrames);
                    m.add(Counter::TransportFrameBytes, payload.len() as u64);
                }
                Ok(())
            }
        }
    }

    /// Which transport backend carries this world's cross-node traffic.
    #[inline]
    pub fn transport_kind(&self) -> TransportKind {
        self.world.transport.kind()
    }

    /// The transport backend's own activity counters (all-zero on
    /// `InProc`, which carries nothing).
    pub fn transport_stats(&self) -> TransportStats {
        self.world.transport.stats()
    }

    pub(crate) fn record_net(&self, class: TransferClass, bytes: usize) {
        if let Some(m) = self.metrics() {
            if matches!(
                class,
                TransferClass::LocalCopy | TransferClass::RemotePut | TransferClass::NonBlockingPut
            ) {
                m.count(Counter::ShmemPuts);
                m.observe(Hist::PutBytes, bytes as u64);
            }
        }
        self.world.ledger.record(self.rank, class, bytes);
    }

    /// This PE's always-on metric slab, or `None` when the harness disabled
    /// telemetry. The handle is cheap enough to look up per event.
    #[inline]
    pub fn metrics(&self) -> Option<&PeMetrics> {
        self.world.telemetry.as_deref().map(|t| t.pe(self.rank))
    }

    /// The world's telemetry registry (shared across PEs), for snapshotting
    /// from inside SPMD bodies.
    pub fn telemetry(&self) -> Option<&Arc<TelemetryRegistry>> {
        self.world.telemetry.as_ref()
    }
}

/// Race-detector surface (the `race-detect` feature). All methods are
/// no-ops when the run's [`Harness`](crate::spmd::Harness) disabled the
/// detector.
#[cfg(feature = "race-detect")]
impl Pe {
    /// This world's detector, if the run is being checked.
    #[inline]
    pub(crate) fn race_detector(&self) -> Option<&Arc<crate::race::Detector>> {
        self.world.race.as_ref()
    }

    /// Release edge on `obj`: order this PE's prior accesses before any PE
    /// that later acquires `obj`.
    pub fn hb_release(&self, obj: &crate::race::HbObject) {
        if let Some(d) = self.race_detector() {
            d.sync_release(self.rank, obj.loc(), || ());
        }
    }

    /// Acquire edge on `obj`: order every prior release of `obj` before
    /// this PE's subsequent accesses.
    pub fn hb_acquire(&self, obj: &crate::race::HbObject) {
        if let Some(d) = self.race_detector() {
            d.sync_acquire(self.rank, obj.loc(), || ());
        }
    }

    /// Combined acquire-release edge on `obj` (models an RMW).
    pub fn hb_rmw(&self, obj: &crate::race::HbObject) {
        if let Some(d) = self.race_detector() {
            d.sync_rmw(self.rank, obj.loc(), || ());
        }
    }

    /// Tag this PE's subsequent tracked accesses with a logical-operation
    /// note (shown in violation reports).
    pub fn race_note(&self, note: &'static str) {
        if let Some(d) = self.race_detector() {
            d.note(self.rank, note);
        }
    }

    /// Total detector events so far (accesses + sync edges), for overhead
    /// reporting; `None` when the run is unchecked.
    pub fn race_events(&self) -> Option<u64> {
        self.race_detector().map(|d| d.events())
    }
}

impl std::fmt::Debug for Pe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pe")
            .field("rank", &self.rank)
            .field("grid", &self.world.grid)
            .finish()
    }
}
