//! The per-thread PE handle and the shared world.
//!
//! [`Pe`] is what SPMD code receives: it identifies the calling processing
//! element, carries its deferred non-blocking-put queue, and is the
//! capability through which all symmetric-memory and collective operations
//! run. It is deliberately `!Sync`/`!Send` — a PE handle belongs to exactly
//! one thread, just as an OpenSHMEM PE is one process.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fabsp_hwpc::cost::model;

use crate::grid::Grid;
use crate::net::{NetLedger, NetStats, TransferClass};
use crate::sync::{PoisonBarrier, Rendezvous};

/// Shared state of one SPMD execution.
pub(crate) struct World {
    pub(crate) grid: Grid,
    pub(crate) barrier: PoisonBarrier,
    pub(crate) rendezvous: Rendezvous,
    pub(crate) ledger: NetLedger,
    pub(crate) poisoned: AtomicBool,
}

impl World {
    pub(crate) fn new(grid: Grid) -> Arc<World> {
        Arc::new(World {
            grid,
            barrier: PoisonBarrier::new(grid.n_pes()),
            rendezvous: Rendezvous::new(grid.n_pes()),
            ledger: NetLedger::new(grid.n_pes()),
            poisoned: AtomicBool::new(false),
        })
    }

    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.barrier.poison();
        self.rendezvous.poison();
    }

    pub(crate) fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "SPMD world poisoned: another PE panicked"
        );
    }
}

/// A deferred non-blocking put, applied at the next [`Pe::quiet`].
pub(crate) struct PendingPut {
    pub(crate) apply: Box<dyn FnOnce()>,
    pub(crate) bytes: usize,
}

/// Handle to one processing element, passed to the SPMD closure.
pub struct Pe {
    rank: usize,
    world: Arc<World>,
    collective_seq: Cell<u64>,
    pending: RefCell<Vec<PendingPut>>,
}

impl Pe {
    pub(crate) fn new(rank: usize, world: Arc<World>) -> Pe {
        Pe {
            rank,
            world,
            collective_seq: Cell::new(0),
            pending: RefCell::new(Vec::new()),
        }
    }

    /// This PE's global rank (OpenSHMEM `shmem_my_pe`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of PEs (OpenSHMEM `shmem_n_pes`).
    #[inline]
    pub fn n_pes(&self) -> usize {
        self.world.grid.n_pes()
    }

    /// The PE/node layout.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.world.grid
    }

    /// The node hosting this PE.
    #[inline]
    pub fn node(&self) -> usize {
        self.world.grid.node_of(self.rank)
    }

    /// This PE's index within its node.
    #[inline]
    pub fn local_index(&self) -> usize {
        self.world.grid.local_index(self.rank)
    }

    /// Whether `other` shares this PE's node.
    #[inline]
    pub fn same_node_as(&self, other: usize) -> bool {
        self.world.grid.same_node(self.rank, other)
    }

    /// Complete all outstanding non-blocking puts issued by this PE
    /// (OpenSHMEM `shmem_quiet`).
    ///
    /// After `quiet` returns, the data of every prior
    /// [`put_nbi`](crate::SymmetricVec::put_nbi) is visible at its target —
    /// and not before, which is the semantics the paper's `nonblock_progress`
    /// instrumentation captures. Returns the number of bytes flushed.
    pub fn quiet(&self) -> usize {
        let pending = std::mem::take(&mut *self.pending.borrow_mut());
        if pending.is_empty() {
            return 0;
        }
        let mut bytes = 0;
        for op in pending {
            bytes += op.bytes;
            (op.apply)();
        }
        model::QUIET.charge();
        self.world
            .ledger
            .record(self.rank, TransferClass::Quiet, bytes);
        bytes
    }

    /// Number of non-blocking puts issued but not yet completed by `quiet`.
    pub fn pending_nbi(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Barrier across all PEs (OpenSHMEM `shmem_barrier_all`).
    /// Implies [`quiet`](Pe::quiet), as the OpenSHMEM specification requires.
    pub fn barrier_all(&self) {
        self.quiet();
        self.world.barrier.wait();
    }

    /// Cooperatively yield while polling: checks for world poisoning so a
    /// panic on another PE does not leave this one spinning forever.
    pub fn poll_yield(&self) {
        self.world.check_poison();
        std::thread::yield_now();
    }

    /// Network statistics attributed to this PE as a source.
    pub fn net_stats(&self) -> NetStats {
        self.world.ledger.pe_stats(self.rank)
    }

    /// Merged network statistics over all PEs. Only meaningful when other
    /// PEs are quiescent (e.g. right after [`barrier_all`](Pe::barrier_all)).
    pub fn world_net_stats(&self) -> NetStats {
        self.world.ledger.total()
    }

    pub(crate) fn world(&self) -> &Arc<World> {
        &self.world
    }

    pub(crate) fn next_collective_seq(&self) -> u64 {
        let seq = self.collective_seq.get();
        self.collective_seq.set(seq + 1);
        seq
    }

    pub(crate) fn push_pending(&self, op: PendingPut) {
        self.pending.borrow_mut().push(op);
    }

    pub(crate) fn record_net(&self, class: TransferClass, bytes: usize) {
        self.world.ledger.record(self.rank, class, bytes);
    }
}

impl std::fmt::Debug for Pe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pe")
            .field("rank", &self.rank)
            .field("grid", &self.world.grid)
            .finish()
    }
}
