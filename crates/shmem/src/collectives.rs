//! Collective operations on [`Pe`]: allocation, reductions, broadcast,
//! all-gather.
//!
//! OpenSHMEM collectives are *symmetric*: every PE must call the same
//! collectives in the same order. That discipline is what lets the
//! rendezvous identify call sites by sequence number; diverging call orders
//! are detected and panic rather than corrupting state.

use crate::atomics::SymmetricAtomicVec;
use crate::error::ShmemError;
use crate::heap::SymmetricVec;
use crate::pe::Pe;

impl Pe {
    /// Collectively allocate a [`SymmetricVec`] of `len` elements per PE
    /// (`shmem_malloc`).
    ///
    /// # Panics
    /// Panics if PEs pass different lengths — that is SPMD divergence, a
    /// programming bug. (Use [`SymmetricVec::new`] directly for the
    /// `Result`-returning form.)
    pub fn alloc_sym<T: Copy + Default + Send + Sync + 'static>(&self, len: usize) -> SymmetricVec<T> {
        SymmetricVec::new(self, len).expect("symmetric allocation diverged across PEs")
    }

    /// Collectively allocate a [`SymmetricAtomicVec`] of `len` atomics per
    /// PE. Panics on SPMD divergence, like [`Pe::alloc_sym`].
    pub fn alloc_sym_atomic(&self, len: usize) -> SymmetricAtomicVec {
        SymmetricAtomicVec::new(self, len).expect("symmetric allocation diverged across PEs")
    }

    /// Generic all-reduce: every PE contributes `value`; all receive
    /// `combine` folded over contributions in rank order.
    pub fn allreduce<T, R>(&self, value: T, combine: impl FnOnce(Vec<T>) -> R) -> R
    where
        T: Send + 'static,
        R: Clone + Send + Sync + 'static,
    {
        let arc = self.run_collective(value, combine);
        (*arc).clone()
    }

    /// Sum-reduce a `u64` across all PEs (`shmem_sum_reduce`).
    pub fn allreduce_sum_u64(&self, value: u64) -> u64 {
        self.allreduce(value, |vs| vs.into_iter().sum())
    }

    /// Sum-reduce an `i64` across all PEs.
    pub fn allreduce_sum_i64(&self, value: i64) -> i64 {
        self.allreduce(value, |vs| vs.into_iter().sum())
    }

    /// Sum-reduce an `f64` across all PEs (rank-ordered, hence
    /// deterministic).
    pub fn allreduce_sum_f64(&self, value: f64) -> f64 {
        self.allreduce(value, |vs| vs.into_iter().sum())
    }

    /// Max-reduce a `u64` across all PEs.
    pub fn allreduce_max_u64(&self, value: u64) -> u64 {
        self.allreduce(value, |vs| vs.into_iter().max().unwrap_or(0))
    }

    /// Min-reduce a `u64` across all PEs.
    pub fn allreduce_min_u64(&self, value: u64) -> u64 {
        self.allreduce(value, |vs| vs.into_iter().min().unwrap_or(0))
    }

    /// Broadcast `value` from `root` to all PEs (`shmem_broadcast`).
    /// Non-root contributions are ignored.
    pub fn broadcast<T>(&self, root: usize, value: T) -> Result<T, ShmemError>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.grid().check_pe(root)?;
        Ok(self.allreduce(value, move |mut vs| vs.swap_remove(root)))
    }

    /// Gather every PE's `value`; all PEs receive the rank-ordered vector
    /// (`shmem_collect`).
    pub fn allgather<T>(&self, value: T) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        self.allreduce(value, |vs| vs)
    }
}

#[cfg(test)]
mod tests {
    use crate::grid::Grid;
    use crate::spmd;

    #[test]
    fn sum_reductions() {
        let grid = Grid::new(2, 2).unwrap();
        let results = spmd::run(grid, |pe| {
            let s = pe.allreduce_sum_u64(pe.rank() as u64);
            let i = pe.allreduce_sum_i64(-(pe.rank() as i64));
            let f = pe.allreduce_sum_f64(0.5);
            (s, i, f)
        })
        .unwrap();
        for (s, i, f) in results {
            assert_eq!(s, 6);
            assert_eq!(i, -6);
            assert!((f - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn max_min_reductions() {
        let grid = Grid::single_node(4).unwrap();
        let results = spmd::run(grid, |pe| {
            (
                pe.allreduce_max_u64(pe.rank() as u64 * 10),
                pe.allreduce_min_u64(pe.rank() as u64 * 10 + 5),
            )
        })
        .unwrap();
        for (max, min) in results {
            assert_eq!(max, 30);
            assert_eq!(min, 5);
        }
    }

    #[test]
    fn broadcast_takes_root_value() {
        let grid = Grid::single_node(3).unwrap();
        let results = spmd::run(grid, |pe| {
            pe.broadcast(2, format!("pe{}", pe.rank())).unwrap()
        })
        .unwrap();
        assert_eq!(results, vec!["pe2", "pe2", "pe2"]);
    }

    #[test]
    fn broadcast_invalid_root_errors() {
        let grid = Grid::single_node(2).unwrap();
        let results = spmd::run(grid, |pe| pe.broadcast(9, 0u8).is_err()).unwrap();
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn allgather_is_rank_ordered() {
        let grid = Grid::new(2, 2).unwrap();
        let results = spmd::run(grid, |pe| pe.allgather(pe.rank() * pe.rank())).unwrap();
        for r in results {
            assert_eq!(r, vec![0, 1, 4, 9]);
        }
    }

    #[test]
    fn collectives_compose_with_barriers() {
        let grid = Grid::single_node(4).unwrap();
        let results = spmd::run(grid, |pe| {
            let mut acc = 0;
            for round in 0..5u64 {
                acc += pe.allreduce_sum_u64(round);
                pe.barrier_all();
            }
            acc
        })
        .unwrap();
        assert_eq!(results, vec![40; 4]); // sum over rounds of 4*round
    }
}
