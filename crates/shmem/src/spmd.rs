//! SPMD launcher: run one closure on every PE of a [`Grid`].
//!
//! This is the reproduction's `oshrun`/`srun`: it spawns one OS thread per
//! PE, hands each a [`Pe`] handle, and joins them. If any PE panics, the
//! world is poisoned so PEs blocked in barriers, collectives, or polling
//! loops unwind instead of hanging, and the first panic (by rank) is
//! reported as [`ShmemError::PePanicked`].

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use fabsp_telemetry::{Counter, TelemetryRegistry};

use crate::error::ShmemError;
use crate::grid::Grid;
use crate::net::FaultSpec;
use crate::pe::{Pe, World};
use crate::recovery::{backoff_delay, KillRecord, RecoveryLog, RecoverySpec};
use crate::sched::{SchedSpec, Scheduler};
use crate::transport::TransportSpec;

/// How a run acquires its telemetry registry.
#[derive(Clone, Default)]
enum TelemetrySpec {
    /// Always-on default: the run creates a fresh registry.
    #[default]
    Fresh,
    /// Telemetry disabled (A/B overhead measurement only).
    Off,
    /// Caller-provided registry, observable from outside the run (live
    /// dashboards, post-run assertions).
    Shared(Arc<TelemetryRegistry>),
}

/// How to run one SPMD execution: the PE layout plus the (optional)
/// deterministic scheduler and fault injection driving it.
///
/// A bare [`Grid`] converts into a harness with OS scheduling and no
/// faults, so `spmd::run(grid, f)` keeps its production meaning while
/// tests can pass a full harness:
///
/// ```
/// use fabsp_shmem::{spmd, spmd::Harness, sched::SchedSpec, net::FaultSpec, Grid};
///
/// let grid = Grid::single_node(2).unwrap();
/// let harness = Harness::new(grid)
///     .sched(SchedSpec::random_walk(42))
///     .faults(FaultSpec::nbi_shuffle(7));
/// let ranks = spmd::run(harness, |pe| pe.rank()).unwrap();
/// assert_eq!(ranks, vec![0, 1]);
/// ```
#[derive(Clone)]
pub struct Harness {
    pub grid: Grid,
    pub sched: SchedSpec,
    pub faults: FaultSpec,
    /// A caller-supplied scheduler, overriding `sched` when set. This is
    /// the pluggable hook: anything implementing [`Scheduler`] can drive
    /// the interleaving.
    custom_sched: Option<Arc<dyn Scheduler>>,
    /// Telemetry wiring: always-on by default, shareable, or disabled.
    telemetry: TelemetrySpec,
    /// What to do when a PE fails (default: abort the run).
    pub recovery: RecoverySpec,
    /// Auto-checkpoint period in supersteps, surfaced to the actor layer's
    /// superstep hooks via [`Pe::checkpoint_due`].
    pub checkpoint_every: Option<u64>,
    /// Pin each PE thread to one CPU (rank round-robin). Opt-in: helps
    /// hot-path benchmarks by keeping a PE's landing cells and staging
    /// buffers warm in one core's cache, but steals scheduling freedom the
    /// OS usually spends well, so it is off by default.
    pub pin_pes: bool,
    /// Which backend carries cross-node traffic (default
    /// [`TransportSpec::InProc`]; see [`crate::transport`]).
    pub transport: TransportSpec,
    /// Whether to attach the happens-before race detector (on by default
    /// when the `race-detect` feature is compiled in, so the whole test
    /// suite runs checked).
    #[cfg(feature = "race-detect")]
    race_detect: bool,
    #[cfg(feature = "race-detect")]
    race_hooks: crate::race::RaceHooks,
}

impl Harness {
    /// OS scheduling, no faults — identical to running with the bare grid.
    pub fn new(grid: Grid) -> Harness {
        Harness {
            grid,
            sched: SchedSpec::Os,
            faults: FaultSpec::NONE,
            custom_sched: None,
            telemetry: TelemetrySpec::Fresh,
            recovery: RecoverySpec::Abort,
            checkpoint_every: None,
            pin_pes: false,
            transport: TransportSpec::InProc,
            #[cfg(feature = "race-detect")]
            race_detect: true,
            #[cfg(feature = "race-detect")]
            race_hooks: crate::race::RaceHooks::default(),
        }
    }

    /// Select a built-in scheduling spec.
    pub fn sched(mut self, sched: SchedSpec) -> Harness {
        self.sched = sched;
        self
    }

    /// Enable fault injection.
    pub fn faults(mut self, faults: FaultSpec) -> Harness {
        self.faults = faults;
        self
    }

    /// Install a custom [`Scheduler`] implementation (overrides `sched`).
    ///
    /// Note: a custom scheduler cannot be rebuilt after a failed attempt,
    /// so it is incompatible with
    /// [`RecoverySpec::RestartFromCheckpoint`] (checked at run time).
    pub fn scheduler(mut self, scheduler: Arc<dyn Scheduler>) -> Harness {
        self.custom_sched = Some(scheduler);
        self
    }

    /// Pin each PE thread to one CPU, rank round-robin over the cores
    /// available to the process. Linux only (a no-op elsewhere); failures
    /// to pin are silently ignored — pinning is a performance hint, never
    /// a correctness requirement.
    pub fn pin_pes(mut self, pin: bool) -> Harness {
        self.pin_pes = pin;
        self
    }

    /// Select the recovery policy applied when a PE fails.
    pub fn recovery(mut self, recovery: RecoverySpec) -> Harness {
        self.recovery = recovery;
        self
    }

    /// Select the transport backend carrying cross-node traffic.
    pub fn transport(mut self, transport: TransportSpec) -> Harness {
        self.transport = transport;
        self
    }

    /// Checkpoint the symmetric state every `n` supersteps (at the
    /// superstep hooks the actor layer drives; see [`Pe::checkpoint_due`]).
    pub fn checkpoint_every(mut self, n: u64) -> Harness {
        self.checkpoint_every = Some(n);
        self
    }

    /// Share a caller-owned [`TelemetryRegistry`] with the run, so live
    /// subscribers can snapshot it while PEs execute and post-mortem
    /// assertions can read it afterwards. The registry must be sized for
    /// this harness's PE count.
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Harness {
        self.telemetry = TelemetrySpec::Shared(registry);
        self
    }

    /// Disable telemetry for this run. Only meant for measuring the
    /// registry's own overhead (the `bench_hotpath` A/B comparison);
    /// production runs leave it on.
    pub fn telemetry_off(mut self) -> Harness {
        self.telemetry = TelemetrySpec::Off;
        self
    }

    /// Enable or disable the happens-before race detector for this run
    /// (enabled by default under the `race-detect` feature; disable to
    /// measure the detector's own overhead).
    #[cfg(feature = "race-detect")]
    pub fn race(mut self, enabled: bool) -> Harness {
        self.race_detect = enabled;
        self
    }

    /// Install negative-litmus hooks (deliberate edge weakenings) on this
    /// run's race detector; see [`crate::race::RaceHooks`].
    #[cfg(feature = "race-detect")]
    pub fn race_hooks(mut self, hooks: crate::race::RaceHooks) -> Harness {
        self.race_hooks = hooks;
        self
    }

    fn build_scheduler(&self) -> Option<Arc<dyn Scheduler>> {
        self.custom_sched
            .clone()
            .or_else(|| self.sched.build(self.grid.n_pes()))
    }

    /// Schedule identity for violation reports: names the seed that
    /// replays the flagged interleaving.
    #[cfg(feature = "race-detect")]
    fn schedule_name(&self) -> String {
        match (&self.custom_sched, self.sched) {
            (Some(_), _) => "custom scheduler".to_string(),
            (None, SchedSpec::Os) => "OS threads, free-running".to_string(),
            (None, SchedSpec::RandomWalk { seed, .. }) => format!("RandomWalk seed {seed}"),
        }
    }
}

impl From<Grid> for Harness {
    fn from(grid: Grid) -> Harness {
        Harness::new(grid)
    }
}

/// Run `f` once per PE and return the per-PE results in rank order.
///
/// `f` runs concurrently on `grid.n_pes()` threads; the `&Pe` argument is
/// the calling PE's identity and capability handle. `harness` is either a
/// bare [`Grid`] (production: OS scheduling, no faults) or a [`Harness`]
/// selecting a deterministic schedule and fault injection.
pub fn run<R, F, H>(harness: H, f: F) -> Result<Vec<R>, ShmemError>
where
    R: Send,
    F: Fn(&Pe) -> R + Sync,
    H: Into<Harness>,
{
    run_recovering(harness, f).map(|(results, _)| results)
}

/// Run `f` once per PE under the harness's [`RecoverySpec`], returning the
/// per-PE results plus the [`RecoveryLog`] of everything fault tolerance
/// did along the way.
///
/// Under [`RecoverySpec::Abort`] (the default) this behaves exactly like
/// [`run`]: any PE failure tears the world down and is reported as
/// [`ShmemError::PePanicked`]. Under
/// [`RecoverySpec::RestartFromCheckpoint`], a failed attempt is retried —
/// the SPMD closure runs again as a fresh attempt (a restarted, seeded run
/// is bit-identical to an unkilled one; see [`crate::recovery`]) with
/// bounded exponential backoff between attempts, up to `max_retries`
/// restarts. Telemetry is shared across attempts, so counters accumulate;
/// the deterministic scheduler, if any, is rebuilt per attempt from its
/// spec so the replay walks the same schedule.
pub fn run_recovering<R, F, H>(harness: H, f: F) -> Result<(Vec<R>, RecoveryLog), ShmemError>
where
    R: Send,
    F: Fn(&Pe) -> R + Sync,
    H: Into<Harness>,
{
    let harness = harness.into();
    let grid = harness.grid;
    let max_retries = harness.recovery.max_retries();
    assert!(
        max_retries == 0 || harness.custom_sched.is_none(),
        "RestartFromCheckpoint cannot rebuild a custom scheduler; use a SchedSpec"
    );
    let backoff = match harness.recovery {
        RecoverySpec::RestartFromCheckpoint { backoff, .. } => backoff,
        RecoverySpec::Abort => std::time::Duration::ZERO,
    };
    // Built once and shared across attempts: counters accumulate over
    // restarts and live observers keep their subscription.
    let telemetry = match &harness.telemetry {
        TelemetrySpec::Fresh => Some(Arc::new(TelemetryRegistry::new(grid.n_pes()))),
        TelemetrySpec::Off => None,
        TelemetrySpec::Shared(reg) => Some(reg.clone()),
    };
    let mut log = RecoveryLog::default();
    let mut attempt = 0u32;
    loop {
        // The scheduler is rebuilt per attempt — a failed attempt poisons
        // it — and, being spec-seeded, replays the same schedule.
        let sched = harness.build_scheduler();
        #[cfg_attr(not(feature = "race-detect"), allow(unused_mut))]
        let mut world = World::with_harness(
            grid,
            sched.clone(),
            harness.faults,
            telemetry.clone(),
            harness.checkpoint_every,
            attempt,
            harness.transport,
        );
        #[cfg(feature = "race-detect")]
        if harness.race_detect {
            let detector = crate::race::Detector::new(
                grid.n_pes(),
                harness.schedule_name(),
                harness.race_hooks,
            );
            Arc::get_mut(&mut world)
                .expect("world is not yet shared at detector installation")
                .race = Some(Arc::new(detector));
        }
        let outcome = run_attempt(&world, sched, harness.pin_pes, &f);
        // Relaxed loads: every PE thread has been joined inside
        // `run_attempt`; the joins are the synchronizing edges.
        log.net_retries += world.net_retries.load(Ordering::Relaxed);
        log.checkpoints_taken += world.checkpoint.taken();
        match outcome {
            Ok(results) => return Ok((results, log)),
            Err((pe, message)) => {
                log.kills_observed.push(KillRecord {
                    attempt,
                    pe,
                    message: message.clone(),
                });
                log.wasted_supersteps += world.superstep_high.load(Ordering::Relaxed);
                if attempt >= max_retries {
                    return Err(if max_retries == 0 {
                        // Abort policy (or a zero-retry restart spec):
                        // preserve the pre-recovery error shape.
                        ShmemError::PePanicked { pe, message }
                    } else {
                        ShmemError::RetriesExhausted {
                            attempts: attempt + 1,
                            pe,
                            message,
                        }
                    });
                }
                if let Some(reg) = &telemetry {
                    // Attributed to the PE that died; its threads are
                    // joined, so the slab has a unique writer again.
                    reg.pe(pe).count(Counter::Restarts);
                }
                let delay = backoff_delay(backoff, attempt);
                attempt += 1;
                log.restarts += 1;
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

/// One SPMD attempt: spawn, run, join. `Err` carries the rank and message
/// of the original panic (collateral world-poison unwinds are filtered).
fn run_attempt<R, F>(
    world: &Arc<World>,
    sched: Option<Arc<dyn Scheduler>>,
    pin_pes: bool,
    f: &F,
) -> Result<Vec<R>, (usize, String)>
where
    R: Send,
    F: Fn(&Pe) -> R + Sync,
{
    let n_pes = world.grid.n_pes();
    let mut outcomes: Vec<Option<std::thread::Result<R>>> = (0..n_pes).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_pes)
            .map(|rank| {
                let world = world.clone();
                let sched = sched.clone();
                scope.spawn(move || {
                    if pin_pes {
                        pin_current_thread(rank);
                    }
                    let pe = Pe::new(rank, world.clone());
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        if let Some(sched) = &sched {
                            sched.register(rank);
                            world.check_poison();
                        }
                        f(&pe)
                    }));
                    if let Some(sched) = &sched {
                        sched.finished(rank);
                    }
                    if result.is_err() {
                        world.poison();
                        // Post-mortem flight-recorder dump for this PE —
                        // covers direct panics, testkit faults, and
                        // termination-checker (step-budget) trips, all of
                        // which unwind through here. Best-effort: a dump
                        // failure must not mask the original panic.
                        if let Some(reg) = &world.telemetry {
                            let _ = reg.dump_flight(rank);
                        }
                    }
                    result
                })
            })
            .collect();
        for (slot, handle) in outcomes.iter_mut().zip(handles) {
            // The spawned closure catches panics, so join itself cannot fail.
            *slot = Some(handle.join().expect("PE thread infrastructure panicked"));
        }
    });

    let mut results = Vec::with_capacity(n_pes);
    let mut panics: Vec<(usize, String)> = Vec::new();
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome.expect("PE outcome missing") {
            Ok(r) => results.push(r),
            // `&*payload`, not `&payload`: the latter would unsize the
            // `&Box` itself into `&dyn Any` and defeat the downcasts.
            Err(payload) => panics.push((rank, panic_message(&*payload))),
        }
    }
    // Report the original panic; PEs that died of induced poisoning are
    // collateral, not the cause.
    let original = panics
        .iter()
        .find(|(_, m)| !m.contains("world poisoned"))
        .or_else(|| panics.first());
    match original {
        Some((pe, message)) => Err((*pe, message.clone())),
        None => Ok(results),
    }
}

// ---------------------------------------------------------------------
// Forked launch mode: worker *processes* hosting PE groups over the Ipc
// transport's shared segment, with rendezvous on the UDS control plane.
// ---------------------------------------------------------------------

/// Env var marking a process as forked worker `<index>` (set by the
/// coordinator on spawn; its presence routes [`run_forked`] into the
/// worker branch).
pub const ENV_IPC_WORKER: &str = "ACTORPROF_IPC_WORKER";
const ENV_IPC_CTRL: &str = "ACTORPROF_IPC_CTRL";
const ENV_IPC_SEGFD: &str = "ACTORPROF_IPC_SEGFD";
const ENV_IPC_NPES: &str = "ACTORPROF_IPC_NPES";
const ENV_IPC_RING: &str = "ACTORPROF_IPC_RING";
const ENV_IPC_ATTEMPT: &str = "ACTORPROF_IPC_ATTEMPT";

/// Launch plan for [`run_forked`]: how many worker processes to spawn,
/// how many PEs each hosts, and how the coordinator re-enters this binary
/// inside the workers (self-reexec: the workers run the *same* code path,
/// which takes the worker branch when [`ENV_IPC_WORKER`] is set).
#[derive(Debug, Clone)]
pub struct ForkPlan {
    /// Worker processes to fork.
    pub processes: usize,
    /// PEs hosted per worker process (threads inside the worker).
    pub pes_per_worker: usize,
    /// Arguments passed to `current_exe()` so the child reaches the same
    /// [`run_forked`] call site (for a test: `["test_name", "--exact"]`).
    pub reentry: Vec<String>,
    /// Ipc segment tuning.
    pub ipc: crate::transport::IpcConfig,
    /// Worker-join and barrier deadline; elapsing it is a typed
    /// [`ShmemError::TransportRendezvous`], never a hang.
    pub rendezvous_timeout: std::time::Duration,
    /// Fault injection (only `kill` is meaningful across processes).
    pub faults: FaultSpec,
    /// Recovery policy: restart respawns all workers as a fresh attempt.
    pub recovery: RecoverySpec,
}

impl ForkPlan {
    /// `processes` workers × `pes_per_worker` PEs re-entering via
    /// `reentry` args, with default timeouts and no faults.
    pub fn new(processes: usize, pes_per_worker: usize, reentry: &[&str]) -> ForkPlan {
        ForkPlan {
            processes,
            pes_per_worker,
            reentry: reentry.iter().map(|s| s.to_string()).collect(),
            ipc: crate::transport::IpcConfig::default(),
            rendezvous_timeout: std::time::Duration::from_secs(20),
            faults: FaultSpec::NONE,
            recovery: RecoverySpec::Abort,
        }
    }

    /// Total PE count across all workers.
    pub fn n_pes(&self) -> usize {
        self.processes * self.pes_per_worker
    }

    /// Enable fault injection (kill only; flaky timing lives inside each
    /// worker's own threaded world).
    pub fn faults(mut self, faults: FaultSpec) -> ForkPlan {
        self.faults = faults;
        self
    }

    /// Select the recovery policy for dead workers.
    pub fn recovery(mut self, recovery: RecoverySpec) -> ForkPlan {
        self.recovery = recovery;
        self
    }

    /// Override the rendezvous/collection deadline.
    pub fn rendezvous_timeout(mut self, timeout: std::time::Duration) -> ForkPlan {
        self.rendezvous_timeout = timeout;
        self
    }

    /// Override the Ipc segment tuning.
    pub fn ipc(mut self, ipc: crate::transport::IpcConfig) -> ForkPlan {
        self.ipc = ipc;
        self
    }
}

/// Outcome of a forked run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkedRun {
    /// Per-PE result words in rank order (read from the segment).
    pub results: Vec<u64>,
    /// Everything fault tolerance did along the way.
    pub recovery: RecoveryLog,
}

/// Run `f` once per PE across forked worker *processes*.
///
/// The coordinator creates the shared segment, spawns `plan.processes`
/// copies of the current executable (passing `plan.reentry` as argv), and
/// rendezvouses them over a UDS control plane. Each worker re-executes the
/// same code path; when it reaches this call, the [`ENV_IPC_WORKER`]
/// marker routes it into the worker branch: it attaches the inherited
/// segment, joins the rendezvous, runs `f` on one thread per hosted PE,
/// publishes each PE's `u64` result into the segment, reports DONE, and
/// exits the process (it never returns).
///
/// Worker death mid-superstep surfaces as a [`KillRecord`] (from the
/// segment's death note) — restarted under
/// [`RecoverySpec::RestartFromCheckpoint`], or reported as a typed error
/// under [`RecoverySpec::Abort`]. A worker that never joins is a
/// [`ShmemError::TransportRendezvous`].
pub fn run_forked<F>(plan: ForkPlan, f: F) -> Result<ForkedRun, ShmemError>
where
    F: Fn(&crate::transport::ipc::IpcEndpoint) -> u64 + Sync,
{
    assert!(plan.processes > 0 && plan.pes_per_worker > 0, "empty fork plan");
    if let Ok(index) = std::env::var(ENV_IPC_WORKER) {
        let index: u64 = index.parse().expect("worker index env");
        forked_worker_main(&plan, index, &f);
    }
    forked_coordinate(&plan)
}

/// Worker branch of [`run_forked`]; never returns.
fn forked_worker_main<F>(plan: &ForkPlan, index: u64, f: &F) -> !
where
    F: Fn(&crate::transport::ipc::IpcEndpoint) -> u64 + Sync,
{
    use crate::transport::ipc::{IpcEndpoint, IpcTransport};
    let getenv = |k: &str| std::env::var(k).unwrap_or_else(|_| panic!("missing {k}"));
    let ctrl = std::path::PathBuf::from(getenv(ENV_IPC_CTRL));
    let segfd: i32 = getenv(ENV_IPC_SEGFD).parse().expect("segfd env");
    let n_pes: usize = getenv(ENV_IPC_NPES).parse().expect("npes env");
    let ring: usize = getenv(ENV_IPC_RING).parse().expect("ring env");
    let attempt: u64 = getenv(ENV_IPC_ATTEMPT).parse().expect("attempt env");
    let transport = Arc::new(
        IpcTransport::attach(segfd, n_pes, crate::transport::IpcConfig { ring_bytes: ring })
            .expect("worker segment attach"),
    );
    let session = crate::transport::control::WorkerSession::join(
        &ctrl,
        index,
        attempt,
        plan.rendezvous_timeout,
    )
    .expect("worker rendezvous");
    let base = session.base_rank as usize;
    let mut status = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.pes_per_worker)
            .map(|i| {
                let transport = transport.clone();
                let kill = plan.faults.kill;
                scope.spawn(move || {
                    let ep = IpcEndpoint::new(transport.clone(), base + i)
                        .with_fault(kill, attempt);
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&ep)));
                    match result {
                        Ok(v) => {
                            transport.set_result(base + i, v);
                            true
                        }
                        Err(_) => false,
                    }
                })
            })
            .collect();
        for handle in handles {
            if !handle.join().unwrap_or(false) {
                status = 2;
            }
        }
    });
    let _ = session.done(index, status);
    std::process::exit(status as i32);
}

/// Coordinator branch of [`run_forked`].
fn forked_coordinate(plan: &ForkPlan) -> Result<ForkedRun, ShmemError> {
    use crate::transport::control::ControlPlane;
    use crate::transport::ipc::IpcTransport;
    let n_pes = plan.n_pes();
    let transport = IpcTransport::coordinator(n_pes, plan.ipc)?;
    let exe = std::env::current_exe()
        .map_err(|e| ShmemError::TransportSetup(format!("current_exe: {e}")))?;
    let ctrl_path = std::env::temp_dir().join(format!(
        "fabsp-ipc-{}-{:x}.sock",
        std::process::id(),
        &transport as *const _ as usize
    ));
    let max_retries = plan.recovery.max_retries();
    let backoff = match plan.recovery {
        RecoverySpec::RestartFromCheckpoint { backoff, .. } => backoff,
        RecoverySpec::Abort => std::time::Duration::ZERO,
    };
    let mut log = RecoveryLog::default();
    let mut attempt = 0u64;
    loop {
        transport.reset_for_attempt(attempt);
        let plane = ControlPlane::bind(&ctrl_path)?;
        let mut children = Vec::with_capacity(plan.processes);
        for i in 0..plan.processes {
            let child = std::process::Command::new(&exe)
                .args(&plan.reentry)
                .env(ENV_IPC_WORKER, i.to_string())
                .env(ENV_IPC_CTRL, &ctrl_path)
                .env(ENV_IPC_SEGFD, transport.segment_fd().to_string())
                .env(ENV_IPC_NPES, n_pes.to_string())
                .env(ENV_IPC_RING, transport.ring_bytes().to_string())
                .env(ENV_IPC_ATTEMPT, attempt.to_string())
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .map_err(|e| ShmemError::TransportSetup(format!("spawn worker {i}: {e}")))?;
            children.push(child);
        }
        let rendezvous = plane.rendezvous(
            plan.processes,
            plan.pes_per_worker,
            attempt,
            plan.rendezvous_timeout,
        );
        let mut conns = match rendezvous {
            Ok(conns) => conns,
            Err(e) => {
                for child in &mut children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e);
            }
        };
        let mut failed = false;
        for conn in &mut conns {
            match ControlPlane::collect_done(conn, plan.rendezvous_timeout) {
                Ok(0) => {}
                Ok(_) | Err(_) => failed = true,
            }
        }
        for child in &mut children {
            // Reap; a worker that reported DONE(0) exits 0 promptly. A
            // worker stuck past its DONE is killed, not waited on forever.
            let deadline = std::time::Instant::now() + plan.rendezvous_timeout;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if std::time::Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        failed = true;
                        break;
                    }
                    Ok(None) => std::thread::sleep(std::time::Duration::from_millis(2)),
                    Err(_) => break,
                }
            }
        }
        if !failed {
            return Ok(ForkedRun {
                results: (0..n_pes).map(|p| transport.result(p)).collect(),
                recovery: log,
            });
        }
        // Attribute the failure: an injected kill leaves a death note in
        // the segment; anything else is an unattributed worker death.
        let (pe, message) = match transport.death() {
            Some((rank, step)) => (
                rank as usize,
                format!("fault injection: kill_pe rank {rank} at superstep {step}"),
            ),
            None => (0, "worker process died mid-superstep".to_string()),
        };
        log.kills_observed.push(KillRecord {
            attempt: attempt as u32,
            pe,
            message: message.clone(),
        });
        if attempt >= u64::from(max_retries) {
            return Err(if max_retries == 0 {
                ShmemError::PePanicked { pe, message }
            } else {
                ShmemError::RetriesExhausted {
                    attempts: attempt as u32 + 1,
                    pe,
                    message,
                }
            });
        }
        let delay = backoff_delay(backoff, attempt as u32);
        attempt += 1;
        log.restarts += 1;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

/// Pin the calling thread to one CPU, chosen rank round-robin over the
/// cores available to the process. Declared directly rather than through a
/// libc crate — std already links libc, and one syscall does not justify a
/// dependency.
#[cfg(target_os = "linux")]
fn pin_current_thread(rank: usize) {
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cpu = rank % cpus;
    // Same shape as libc's cpu_set_t: 1024 bits.
    let mut mask = [0u64; 16];
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    // SAFETY: `mask` is a live, properly sized buffer and pid 0 targets the
    // calling thread. A failing call (e.g. a restricted cpuset) leaves the
    // thread unpinned, which is benign — pinning is a performance hint —
    // so the return value is deliberately ignored.
    unsafe {
        sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_current_thread(_rank: usize) {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_one_closure_per_pe_in_rank_order() {
        let grid = Grid::new(2, 3).unwrap();
        let results = run(grid, |pe| (pe.rank(), pe.node(), pe.local_index())).unwrap();
        assert_eq!(
            results,
            vec![
                (0, 0, 0),
                (1, 0, 1),
                (2, 0, 2),
                (3, 1, 0),
                (4, 1, 1),
                (5, 1, 2)
            ]
        );
    }

    #[test]
    fn pinned_run_completes_with_correct_results() {
        let grid = Grid::single_node(4).unwrap();
        let results = run(Harness::new(grid).pin_pes(true), |pe| {
            pe.barrier_all();
            pe.rank() * 10
        })
        .unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn barrier_all_is_usable_repeatedly() {
        let grid = Grid::single_node(4).unwrap();
        let results = run(grid, |pe| {
            for _ in 0..10 {
                pe.barrier_all();
            }
            pe.rank()
        })
        .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pe_panic_is_reported_not_hung() {
        let grid = Grid::single_node(3).unwrap();
        let err = run(grid, |pe| {
            if pe.rank() == 1 {
                panic!("deliberate failure on PE 1");
            }
            // Other PEs head into a barrier that PE 1 never reaches;
            // poisoning must release them.
            pe.barrier_all();
        })
        .unwrap_err();
        match err {
            ShmemError::PePanicked { pe, message } => {
                assert_eq!(pe, 1, "the original panicking PE must be reported");
                assert!(message.contains("deliberate"), "unexpected: {message}");
            }
            other => panic!("expected PePanicked, got {other:?}"),
        }
    }

    #[test]
    fn poll_yield_panics_after_poison() {
        let grid = Grid::single_node(2).unwrap();
        let err = run(grid, |pe| {
            if pe.rank() == 0 {
                panic!("boom");
            }
            // PE 1 polls forever; the poison check must break the loop.
            loop {
                pe.poll_yield();
            }
            #[allow(unreachable_code)]
            ()
        })
        .unwrap_err();
        assert!(matches!(err, ShmemError::PePanicked { .. }));
    }

    #[test]
    fn recoverable_fault_no_longer_fails_the_harness() {
        // Regression: the poisoned-worker path used to tear down all PEs on
        // any single panic even when a RecoverySpec could handle it. A kill
        // fault under RestartFromCheckpoint must now succeed via restart.
        let grid = Grid::single_node(3).unwrap();
        let harness = Harness::new(grid)
            .faults(FaultSpec::kill_pe(1, 0))
            .recovery(RecoverySpec::restart(2));
        let (results, log) = run_recovering(harness, |pe| {
            let ss = pe.begin_superstep();
            pe.barrier_all();
            pe.end_superstep(ss);
            pe.rank() * 10
        })
        .unwrap();
        assert_eq!(results, vec![0, 10, 20]);
        assert_eq!(log.restarts, 1);
        assert_eq!(log.kills_observed.len(), 1);
        assert_eq!(log.kills_observed[0].pe, 1);
        assert!(log.kills_observed[0].message.contains("kill_pe"));
        assert_eq!(log.wasted_supersteps, 1);
    }

    #[test]
    fn same_fault_under_abort_still_fails() {
        let grid = Grid::single_node(3).unwrap();
        let harness = Harness::new(grid).faults(FaultSpec::kill_pe(1, 0));
        let err = run(harness, |pe| {
            let ss = pe.begin_superstep();
            pe.barrier_all();
            pe.end_superstep(ss);
        })
        .unwrap_err();
        match err {
            ShmemError::PePanicked { pe, message } => {
                assert_eq!(pe, 1);
                assert!(message.contains("kill_pe"), "unexpected: {message}");
            }
            other => panic!("expected PePanicked, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_report_the_last_failure() {
        // A plain panic (not a kill fault) fires on every attempt, so even
        // restarts cannot save the run.
        let grid = Grid::single_node(2).unwrap();
        let harness = Harness::new(grid).recovery(RecoverySpec::restart(2));
        let err = run_recovering(harness, |pe| {
            if pe.rank() == 0 {
                panic!("always fails");
            }
            pe.barrier_all();
        })
        .unwrap_err();
        match err {
            ShmemError::RetriesExhausted { attempts, pe, message } => {
                assert_eq!(attempts, 3);
                assert_eq!(pe, 0);
                assert!(message.contains("always fails"));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn kill_fires_only_on_the_initial_attempt() {
        // attempt index is threaded into the world: a restarted attempt
        // models a replaced node, so the same kill spec must not re-fire.
        let grid = Grid::single_node(2).unwrap();
        let harness = Harness::new(grid)
            .faults(FaultSpec::kill_pe(0, 0))
            .recovery(RecoverySpec::restart(1));
        let (_, log) = run_recovering(harness, |pe| {
            let ss = pe.begin_superstep();
            pe.end_superstep(ss);
        })
        .unwrap();
        assert_eq!(log.restarts, 1);
        assert_eq!(log.kills_observed.len(), 1);
    }

    #[test]
    fn single_pe_grid_works() {
        let grid = Grid::single_node(1).unwrap();
        let results = run(grid, |pe| {
            pe.barrier_all();
            pe.n_pes()
        })
        .unwrap();
        assert_eq!(results, vec![1]);
    }
}
