//! SPMD launcher: run one closure on every PE of a [`Grid`].
//!
//! This is the reproduction's `oshrun`/`srun`: it spawns one OS thread per
//! PE, hands each a [`Pe`] handle, and joins them. If any PE panics, the
//! world is poisoned so PEs blocked in barriers, collectives, or polling
//! loops unwind instead of hanging, and the first panic (by rank) is
//! reported as [`ShmemError::PePanicked`].

use std::panic::AssertUnwindSafe;

use crate::error::ShmemError;
use crate::grid::Grid;
use crate::pe::{Pe, World};

/// Run `f` once per PE and return the per-PE results in rank order.
///
/// `f` runs concurrently on `grid.n_pes()` threads; the `&Pe` argument is
/// the calling PE's identity and capability handle.
pub fn run<R, F>(grid: Grid, f: F) -> Result<Vec<R>, ShmemError>
where
    R: Send,
    F: Fn(&Pe) -> R + Sync,
{
    let world = World::new(grid);
    let mut outcomes: Vec<Option<std::thread::Result<R>>> =
        (0..grid.n_pes()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..grid.n_pes())
            .map(|rank| {
                let world = world.clone();
                let f = &f;
                scope.spawn(move || {
                    let pe = Pe::new(rank, world.clone());
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&pe)));
                    if result.is_err() {
                        world.poison();
                    }
                    result
                })
            })
            .collect();
        for (slot, handle) in outcomes.iter_mut().zip(handles) {
            // The spawned closure catches panics, so join itself cannot fail.
            *slot = Some(handle.join().expect("PE thread infrastructure panicked"));
        }
    });

    let mut results = Vec::with_capacity(grid.n_pes());
    let mut panics: Vec<(usize, String)> = Vec::new();
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome.expect("PE outcome missing") {
            Ok(r) => results.push(r),
            // `&*payload`, not `&payload`: the latter would unsize the
            // `&Box` itself into `&dyn Any` and defeat the downcasts.
            Err(payload) => panics.push((rank, panic_message(&*payload))),
        }
    }
    // Report the original panic; PEs that died of induced poisoning are
    // collateral, not the cause.
    let original = panics
        .iter()
        .find(|(_, m)| !m.contains("world poisoned"))
        .or_else(|| panics.first());
    match original {
        Some((pe, message)) => Err(ShmemError::PePanicked {
            pe: *pe,
            message: message.clone(),
        }),
        None => Ok(results),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_one_closure_per_pe_in_rank_order() {
        let grid = Grid::new(2, 3).unwrap();
        let results = run(grid, |pe| (pe.rank(), pe.node(), pe.local_index())).unwrap();
        assert_eq!(
            results,
            vec![
                (0, 0, 0),
                (1, 0, 1),
                (2, 0, 2),
                (3, 1, 0),
                (4, 1, 1),
                (5, 1, 2)
            ]
        );
    }

    #[test]
    fn barrier_all_is_usable_repeatedly() {
        let grid = Grid::single_node(4).unwrap();
        let results = run(grid, |pe| {
            for _ in 0..10 {
                pe.barrier_all();
            }
            pe.rank()
        })
        .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pe_panic_is_reported_not_hung() {
        let grid = Grid::single_node(3).unwrap();
        let err = run(grid, |pe| {
            if pe.rank() == 1 {
                panic!("deliberate failure on PE 1");
            }
            // Other PEs head into a barrier that PE 1 never reaches;
            // poisoning must release them.
            pe.barrier_all();
        })
        .unwrap_err();
        match err {
            ShmemError::PePanicked { pe, message } => {
                assert_eq!(pe, 1, "the original panicking PE must be reported");
                assert!(message.contains("deliberate"), "unexpected: {message}");
            }
            other => panic!("expected PePanicked, got {other:?}"),
        }
    }

    #[test]
    fn poll_yield_panics_after_poison() {
        let grid = Grid::single_node(2).unwrap();
        let err = run(grid, |pe| {
            if pe.rank() == 0 {
                panic!("boom");
            }
            // PE 1 polls forever; the poison check must break the loop.
            loop {
                pe.poll_yield();
            }
            #[allow(unreachable_code)]
            ()
        })
        .unwrap_err();
        assert!(matches!(err, ShmemError::PePanicked { .. }));
    }

    #[test]
    fn single_pe_grid_works() {
        let grid = Grid::single_node(1).unwrap();
        let results = run(grid, |pe| {
            pe.barrier_all();
            pe.n_pes()
        })
        .unwrap();
        assert_eq!(results, vec![1]);
    }
}
