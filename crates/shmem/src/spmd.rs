//! SPMD launcher: run one closure on every PE of a [`Grid`].
//!
//! This is the reproduction's `oshrun`/`srun`: it spawns one OS thread per
//! PE, hands each a [`Pe`] handle, and joins them. If any PE panics, the
//! world is poisoned so PEs blocked in barriers, collectives, or polling
//! loops unwind instead of hanging, and the first panic (by rank) is
//! reported as [`ShmemError::PePanicked`].

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use fabsp_telemetry::TelemetryRegistry;

use crate::error::ShmemError;
use crate::grid::Grid;
use crate::net::FaultSpec;
use crate::pe::{Pe, World};
use crate::sched::{SchedSpec, Scheduler};

/// How a run acquires its telemetry registry.
#[derive(Clone, Default)]
enum TelemetrySpec {
    /// Always-on default: the run creates a fresh registry.
    #[default]
    Fresh,
    /// Telemetry disabled (A/B overhead measurement only).
    Off,
    /// Caller-provided registry, observable from outside the run (live
    /// dashboards, post-run assertions).
    Shared(Arc<TelemetryRegistry>),
}

/// How to run one SPMD execution: the PE layout plus the (optional)
/// deterministic scheduler and fault injection driving it.
///
/// A bare [`Grid`] converts into a harness with OS scheduling and no
/// faults, so `spmd::run(grid, f)` keeps its production meaning while
/// tests can pass a full harness:
///
/// ```
/// use fabsp_shmem::{spmd, spmd::Harness, sched::SchedSpec, net::FaultSpec, Grid};
///
/// let grid = Grid::single_node(2).unwrap();
/// let harness = Harness::new(grid)
///     .sched(SchedSpec::random_walk(42))
///     .faults(FaultSpec::nbi_shuffle(7));
/// let ranks = spmd::run(harness, |pe| pe.rank()).unwrap();
/// assert_eq!(ranks, vec![0, 1]);
/// ```
#[derive(Clone)]
pub struct Harness {
    pub grid: Grid,
    pub sched: SchedSpec,
    pub faults: FaultSpec,
    /// A caller-supplied scheduler, overriding `sched` when set. This is
    /// the pluggable hook: anything implementing [`Scheduler`] can drive
    /// the interleaving.
    custom_sched: Option<Arc<dyn Scheduler>>,
    /// Telemetry wiring: always-on by default, shareable, or disabled.
    telemetry: TelemetrySpec,
    /// Whether to attach the happens-before race detector (on by default
    /// when the `race-detect` feature is compiled in, so the whole test
    /// suite runs checked).
    #[cfg(feature = "race-detect")]
    race_detect: bool,
    #[cfg(feature = "race-detect")]
    race_hooks: crate::race::RaceHooks,
}

impl Harness {
    /// OS scheduling, no faults — identical to running with the bare grid.
    pub fn new(grid: Grid) -> Harness {
        Harness {
            grid,
            sched: SchedSpec::Os,
            faults: FaultSpec::NONE,
            custom_sched: None,
            telemetry: TelemetrySpec::Fresh,
            #[cfg(feature = "race-detect")]
            race_detect: true,
            #[cfg(feature = "race-detect")]
            race_hooks: crate::race::RaceHooks::default(),
        }
    }

    /// Select a built-in scheduling spec.
    pub fn sched(mut self, sched: SchedSpec) -> Harness {
        self.sched = sched;
        self
    }

    /// Enable fault injection.
    pub fn faults(mut self, faults: FaultSpec) -> Harness {
        self.faults = faults;
        self
    }

    /// Install a custom [`Scheduler`] implementation (overrides `sched`).
    pub fn scheduler(mut self, scheduler: Arc<dyn Scheduler>) -> Harness {
        self.custom_sched = Some(scheduler);
        self
    }

    /// Share a caller-owned [`TelemetryRegistry`] with the run, so live
    /// subscribers can snapshot it while PEs execute and post-mortem
    /// assertions can read it afterwards. The registry must be sized for
    /// this harness's PE count.
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Harness {
        self.telemetry = TelemetrySpec::Shared(registry);
        self
    }

    /// Disable telemetry for this run. Only meant for measuring the
    /// registry's own overhead (the `bench_hotpath` A/B comparison);
    /// production runs leave it on.
    pub fn telemetry_off(mut self) -> Harness {
        self.telemetry = TelemetrySpec::Off;
        self
    }

    /// Enable or disable the happens-before race detector for this run
    /// (enabled by default under the `race-detect` feature; disable to
    /// measure the detector's own overhead).
    #[cfg(feature = "race-detect")]
    pub fn race(mut self, enabled: bool) -> Harness {
        self.race_detect = enabled;
        self
    }

    /// Install negative-litmus hooks (deliberate edge weakenings) on this
    /// run's race detector; see [`crate::race::RaceHooks`].
    #[cfg(feature = "race-detect")]
    pub fn race_hooks(mut self, hooks: crate::race::RaceHooks) -> Harness {
        self.race_hooks = hooks;
        self
    }

    fn build_scheduler(&self) -> Option<Arc<dyn Scheduler>> {
        self.custom_sched
            .clone()
            .or_else(|| self.sched.build(self.grid.n_pes()))
    }

    /// Schedule identity for violation reports: names the seed that
    /// replays the flagged interleaving.
    #[cfg(feature = "race-detect")]
    fn schedule_name(&self) -> String {
        match (&self.custom_sched, self.sched) {
            (Some(_), _) => "custom scheduler".to_string(),
            (None, SchedSpec::Os) => "OS threads, free-running".to_string(),
            (None, SchedSpec::RandomWalk { seed, .. }) => format!("RandomWalk seed {seed}"),
        }
    }
}

impl From<Grid> for Harness {
    fn from(grid: Grid) -> Harness {
        Harness::new(grid)
    }
}

/// Run `f` once per PE and return the per-PE results in rank order.
///
/// `f` runs concurrently on `grid.n_pes()` threads; the `&Pe` argument is
/// the calling PE's identity and capability handle. `harness` is either a
/// bare [`Grid`] (production: OS scheduling, no faults) or a [`Harness`]
/// selecting a deterministic schedule and fault injection.
pub fn run<R, F, H>(harness: H, f: F) -> Result<Vec<R>, ShmemError>
where
    R: Send,
    F: Fn(&Pe) -> R + Sync,
    H: Into<Harness>,
{
    let harness = harness.into();
    let grid = harness.grid;
    let sched = harness.build_scheduler();
    let telemetry = match &harness.telemetry {
        TelemetrySpec::Fresh => Some(Arc::new(TelemetryRegistry::new(grid.n_pes()))),
        TelemetrySpec::Off => None,
        TelemetrySpec::Shared(reg) => Some(reg.clone()),
    };
    #[cfg_attr(not(feature = "race-detect"), allow(unused_mut))]
    let mut world = World::with_harness(grid, sched.clone(), harness.faults, telemetry);
    #[cfg(feature = "race-detect")]
    if harness.race_detect {
        let detector = crate::race::Detector::new(
            grid.n_pes(),
            harness.schedule_name(),
            harness.race_hooks,
        );
        Arc::get_mut(&mut world)
            .expect("world is not yet shared at detector installation")
            .race = Some(Arc::new(detector));
    }
    let mut outcomes: Vec<Option<std::thread::Result<R>>> =
        (0..grid.n_pes()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..grid.n_pes())
            .map(|rank| {
                let world = world.clone();
                let sched = sched.clone();
                let f = &f;
                scope.spawn(move || {
                    let pe = Pe::new(rank, world.clone());
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        if let Some(sched) = &sched {
                            sched.register(rank);
                            world.check_poison();
                        }
                        f(&pe)
                    }));
                    if let Some(sched) = &sched {
                        sched.finished(rank);
                    }
                    if result.is_err() {
                        world.poison();
                        // Post-mortem flight-recorder dump for this PE —
                        // covers direct panics, testkit faults, and
                        // termination-checker (step-budget) trips, all of
                        // which unwind through here. Best-effort: a dump
                        // failure must not mask the original panic.
                        if let Some(reg) = &world.telemetry {
                            let _ = reg.dump_flight(rank);
                        }
                    }
                    result
                })
            })
            .collect();
        for (slot, handle) in outcomes.iter_mut().zip(handles) {
            // The spawned closure catches panics, so join itself cannot fail.
            *slot = Some(handle.join().expect("PE thread infrastructure panicked"));
        }
    });

    let mut results = Vec::with_capacity(grid.n_pes());
    let mut panics: Vec<(usize, String)> = Vec::new();
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome.expect("PE outcome missing") {
            Ok(r) => results.push(r),
            // `&*payload`, not `&payload`: the latter would unsize the
            // `&Box` itself into `&dyn Any` and defeat the downcasts.
            Err(payload) => panics.push((rank, panic_message(&*payload))),
        }
    }
    // Report the original panic; PEs that died of induced poisoning are
    // collateral, not the cause.
    let original = panics
        .iter()
        .find(|(_, m)| !m.contains("world poisoned"))
        .or_else(|| panics.first());
    match original {
        Some((pe, message)) => Err(ShmemError::PePanicked {
            pe: *pe,
            message: message.clone(),
        }),
        None => Ok(results),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_one_closure_per_pe_in_rank_order() {
        let grid = Grid::new(2, 3).unwrap();
        let results = run(grid, |pe| (pe.rank(), pe.node(), pe.local_index())).unwrap();
        assert_eq!(
            results,
            vec![
                (0, 0, 0),
                (1, 0, 1),
                (2, 0, 2),
                (3, 1, 0),
                (4, 1, 1),
                (5, 1, 2)
            ]
        );
    }

    #[test]
    fn barrier_all_is_usable_repeatedly() {
        let grid = Grid::single_node(4).unwrap();
        let results = run(grid, |pe| {
            for _ in 0..10 {
                pe.barrier_all();
            }
            pe.rank()
        })
        .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pe_panic_is_reported_not_hung() {
        let grid = Grid::single_node(3).unwrap();
        let err = run(grid, |pe| {
            if pe.rank() == 1 {
                panic!("deliberate failure on PE 1");
            }
            // Other PEs head into a barrier that PE 1 never reaches;
            // poisoning must release them.
            pe.barrier_all();
        })
        .unwrap_err();
        match err {
            ShmemError::PePanicked { pe, message } => {
                assert_eq!(pe, 1, "the original panicking PE must be reported");
                assert!(message.contains("deliberate"), "unexpected: {message}");
            }
            other => panic!("expected PePanicked, got {other:?}"),
        }
    }

    #[test]
    fn poll_yield_panics_after_poison() {
        let grid = Grid::single_node(2).unwrap();
        let err = run(grid, |pe| {
            if pe.rank() == 0 {
                panic!("boom");
            }
            // PE 1 polls forever; the poison check must break the loop.
            loop {
                pe.poll_yield();
            }
            #[allow(unreachable_code)]
            ()
        })
        .unwrap_err();
        assert!(matches!(err, ShmemError::PePanicked { .. }));
    }

    #[test]
    fn single_pe_grid_works() {
        let grid = Grid::single_node(1).unwrap();
        let results = run(grid, |pe| {
            pe.barrier_all();
            pe.n_pes()
        })
        .unwrap();
        assert_eq!(results, vec![1]);
    }
}
