//! The symmetric heap: remotely addressable per-PE regions.
//!
//! A [`SymmetricVec<T>`] is the moral equivalent of `shmem_malloc`: every PE
//! owns a region of the same length, and any PE can `put`/`get` into any
//! other PE's region by `(pe, offset)`.
//!
//! Two put flavours matter to ActorProf:
//!
//! - [`put`](SymmetricVec::put) — blocking; complete on return. Within a
//!   node this models the `shmem_ptr` + `std::memcpy` path Conveyors uses
//!   for `local_send`.
//! - [`put_nbi`](SymmetricVec::put_nbi) — non-blocking
//!   (`shmem_putmem_nbi`); the data is **not** visible at the target until
//!   the initiating PE calls [`Pe::quiet`]. Conveyors' `nonblock_send` /
//!   `nonblock_progress` pair is built on exactly this, and the deferral is
//!   why conventional profilers miss these routines (§V-B of the paper).
//!
//! Every region is guarded by its own lock; remote access is therefore
//! data-race-free by construction (the simulation's stand-in for the
//! network's serialization of RDMA writes).

use std::any::Any;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use fabsp_hwpc::cost::model;

use crate::checkpoint::CheckpointTarget;
use crate::error::ShmemError;
use crate::grid::Grid;
use crate::net::TransferClass;
use crate::pe::Pe;
use crate::sched::SchedPoint;
use crate::transport;

struct SymInner<T> {
    len: usize,
    grid: Grid,
    regions: Vec<Mutex<Box<[T]>>>,
    /// Allocation identity for the race detector's location map. The
    /// per-region mutex serializes the *bytes* (it models the NIC, not
    /// program order), so it deliberately contributes no happens-before
    /// edge: ordering must come from atomics, collectives, or quiet.
    #[cfg(feature = "race-detect")]
    race_id: u64,
}

/// Deep-copy in/out for checkpoints. Runs only inside a collective cut
/// (all PEs in the rendezvous, bracketed by its happens-before edges), so
/// the uninstrumented region reads/writes are race-free by construction.
impl<T: Copy + Send + Sync + 'static> CheckpointTarget for SymInner<T> {
    fn capture(&self) -> Box<dyn Any + Send + Sync> {
        let copy: Vec<Vec<T>> = self.regions.iter().map(|r| r.lock().to_vec()).collect();
        Box::new(copy)
    }

    fn restore(&self, snapshot: &(dyn Any + Send + Sync)) {
        let copy = snapshot
            .downcast_ref::<Vec<Vec<T>>>()
            .expect("checkpoint snapshot type mismatch for SymmetricVec");
        for (region, saved) in self.regions.iter().zip(copy) {
            region.lock().copy_from_slice(saved);
        }
    }
}

/// A symmetric array: one same-length region per PE, remotely addressable.
///
/// Clone is shallow (all clones refer to the same symmetric allocation).
pub struct SymmetricVec<T> {
    inner: Arc<SymInner<T>>,
}

impl<T> Clone for SymmetricVec<T> {
    fn clone(&self) -> Self {
        SymmetricVec {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + Default + Send + Sync + 'static> SymmetricVec<T> {
    /// Collectively allocate a symmetric array of `len` elements per PE.
    /// All PEs must call with the same `len` (checked).
    ///
    /// Prefer [`Pe::alloc_sym`], which reads more naturally at call sites.
    pub fn new(pe: &Pe, len: usize) -> Result<SymmetricVec<T>, ShmemError> {
        let grid = pe.grid();
        let world = pe.world_arc();
        let arc = pe.run_collective(
            len,
            move |lens| -> Result<SymmetricVec<T>, ShmemError> {
                if lens.iter().any(|&l| l != lens[0]) {
                    return Err(ShmemError::CollectiveMismatch(format!(
                        "alloc_sym lengths differ across PEs: {lens:?}"
                    )));
                }
                let regions = (0..grid.n_pes())
                    .map(|_| Mutex::new(vec![T::default(); lens[0]].into_boxed_slice()))
                    .collect();
                let inner = Arc::new(SymInner {
                    len: lens[0],
                    grid,
                    regions,
                    #[cfg(feature = "race-detect")]
                    race_id: crate::race::next_alloc_id(),
                });
                // Inside the allocation collective's combine closure, so
                // registration happens exactly once per allocation, in the
                // same deterministic order on every attempt.
                world
                    .checkpoint
                    .register(Arc::downgrade(&inner) as Weak<dyn CheckpointTarget>);
                Ok(SymmetricVec { inner })
            },
        );
        (*arc).clone()
    }

    /// Length of each PE's region.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the per-PE regions are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    fn check(&self, pe: usize, offset: usize, len: usize) -> Result<(), ShmemError> {
        self.inner.grid.check_pe(pe)?;
        if offset.checked_add(len).is_none_or(|end| end > self.inner.len) {
            return Err(ShmemError::OutOfBounds {
                offset,
                len,
                region_len: self.inner.len,
            });
        }
        Ok(())
    }

    /// Record a tracked range access (no-op without a detector).
    #[cfg(feature = "race-detect")]
    fn trace_range(&self, pe: &Pe, owner: usize, start: usize, len: usize, write: bool, label: &'static str) {
        if let Some(d) = pe.race_detector() {
            if write {
                d.write_range(pe.rank(), self.inner.race_id, owner, start, len, label);
            } else {
                d.read_range(pe.rank(), self.inner.race_id, owner, start, len, label);
            }
        }
    }

    /// Read access to the calling PE's own region.
    pub fn read_local<R>(&self, pe: &Pe, f: impl FnOnce(&[T]) -> R) -> R {
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, pe.rank(), 0, self.inner.len, false, "SymmetricVec::read_local");
        f(&self.inner.regions[pe.rank()].lock())
    }

    /// Read access to `offset..offset + len` of the calling PE's own
    /// region. Semantically identical to [`read_local`](Self::read_local)
    /// plus slicing, but tells the race detector exactly which elements are
    /// touched — use it when other PEs legitimately write disjoint parts of
    /// the region concurrently.
    pub fn read_local_range<R>(
        &self,
        pe: &Pe,
        offset: usize,
        len: usize,
        f: impl FnOnce(&[T]) -> R,
    ) -> Result<R, ShmemError> {
        self.check(pe.rank(), offset, len)?;
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, pe.rank(), offset, len, false, "SymmetricVec::read_local_range");
        let region = self.inner.regions[pe.rank()].lock();
        Ok(f(&region[offset..offset + len]))
    }

    /// Write access to the calling PE's own region.
    pub fn write_local<R>(&self, pe: &Pe, f: impl FnOnce(&mut [T]) -> R) -> R {
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, pe.rank(), 0, self.inner.len, true, "SymmetricVec::write_local");
        f(&mut self.inner.regions[pe.rank()].lock())
    }

    /// Read one element of the calling PE's own region.
    pub fn local_get(&self, pe: &Pe, index: usize) -> T {
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, pe.rank(), index, 1, false, "SymmetricVec::local_get");
        self.inner.regions[pe.rank()].lock()[index]
    }

    /// Write one element of the calling PE's own region.
    pub fn local_set(&self, pe: &Pe, index: usize, value: T) {
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, pe.rank(), index, 1, true, "SymmetricVec::local_set");
        self.inner.regions[pe.rank()].lock()[index] = value;
    }

    /// Direct access to a *same-node* PE's region (`shmem_ptr`).
    ///
    /// Returns `Err` if `target_pe` is on a different node — `shmem_ptr`
    /// returns NULL there, and Conveyors falls back to `nonblock_send`.
    pub fn with_same_node<R>(
        &self,
        pe: &Pe,
        target_pe: usize,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> Result<R, ShmemError> {
        self.inner.grid.check_pe(target_pe)?;
        if !pe.same_node_as(target_pe) {
            return Err(ShmemError::InvalidPe {
                pe: target_pe,
                n_pes: self.inner.grid.n_pes(),
            });
        }
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, target_pe, 0, self.inner.len, true, "SymmetricVec::with_same_node");
        Ok(f(&mut self.inner.regions[target_pe].lock()))
    }

    /// Blocking put: copy `src` into `dst_pe`'s region at `offset`.
    /// Complete (remotely visible) on return.
    pub fn put(&self, pe: &Pe, dst_pe: usize, offset: usize, src: &[T]) -> Result<(), ShmemError> {
        self.check(dst_pe, offset, src.len())?;
        pe.sched_point(SchedPoint::Put);
        let bytes = std::mem::size_of_val(src);
        if !pe.same_node_as(dst_pe) {
            // Inter-node puts traverse the modeled (possibly flaky) NIC;
            // same-node puts are shmem_ptr memcpys and cannot time out.
            pe.net_attempt(TransferClass::RemotePut);
            pe.carry(dst_pe, TransferClass::RemotePut, transport::payload_bytes(src))?;
        }
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, dst_pe, offset, src.len(), true, "SymmetricVec::put");
        {
            let mut region = self.inner.regions[dst_pe].lock();
            region[offset..offset + src.len()].copy_from_slice(src);
        }
        if pe.same_node_as(dst_pe) {
            model::MEMCPY_PER_BYTE.times(bytes as u64).charge();
            pe.record_net(TransferClass::LocalCopy, bytes);
        } else {
            model::PUTMEM_NBI.charge();
            model::MEMCPY_PER_BYTE.times(bytes as u64).charge();
            pe.record_net(TransferClass::RemotePut, bytes);
        }
        Ok(())
    }

    /// Blocking get: copy from `src_pe`'s region at `offset` into `dst`.
    pub fn get(
        &self,
        pe: &Pe,
        src_pe: usize,
        offset: usize,
        dst: &mut [T],
    ) -> Result<(), ShmemError> {
        self.check(src_pe, offset, dst.len())?;
        pe.sched_point(SchedPoint::Get);
        let bytes = std::mem::size_of_val(dst);
        if !pe.same_node_as(src_pe) {
            pe.net_attempt(TransferClass::RemoteGet);
            // A get's response payload travels src_pe → this PE; carry the
            // request's extent (same byte count) at initiation.
            pe.carry(src_pe, TransferClass::RemoteGet, transport::payload_bytes(&*dst))?;
        }
        #[cfg(feature = "race-detect")]
        self.trace_range(pe, src_pe, offset, dst.len(), false, "SymmetricVec::get");
        {
            let region = self.inner.regions[src_pe].lock();
            dst.copy_from_slice(&region[offset..offset + dst.len()]);
        }
        if pe.same_node_as(src_pe) {
            model::MEMCPY_PER_BYTE.times(bytes as u64).charge();
            pe.record_net(TransferClass::LocalCopy, bytes);
        } else {
            model::PUTMEM_NBI.charge();
            model::MEMCPY_PER_BYTE.times(bytes as u64).charge();
            pe.record_net(TransferClass::RemoteGet, bytes);
        }
        Ok(())
    }

    /// Non-blocking put (`shmem_putmem_nbi`): schedule `src` to be copied
    /// into `dst_pe`'s region at `offset`.
    ///
    /// The transfer is **deferred**: it is applied — and only then becomes
    /// visible at `dst_pe` — when this PE next calls [`Pe::quiet`] (or an
    /// operation that implies it, like [`Pe::barrier_all`]). The source
    /// data is captured at call time, mirroring the network's DMA read of
    /// the (Conveyors double-buffered, hence stable) source buffer.
    pub fn put_nbi(
        &self,
        pe: &Pe,
        dst_pe: usize,
        offset: usize,
        src: &[T],
    ) -> Result<(), ShmemError> {
        self.check(dst_pe, offset, src.len())?;
        pe.sched_point(SchedPoint::PutNbi);
        let bytes = std::mem::size_of_val(src);
        if !pe.same_node_as(dst_pe) {
            // Carry at *staging* time — the network's DMA read of the
            // source happens now, and the deferred closure stays
            // transport-free (zero-alloc, no extra sched points at quiet).
            pe.carry(dst_pe, TransferClass::NonBlockingPut, transport::payload_bytes(src))?;
        }
        let inner = Arc::clone(&self.inner);
        let data: Vec<T> = src.to_vec();
        // The write *event* is deferred with the data: until quiet applies
        // the copy, the target legitimately sees (and may read) the old
        // bytes, so staging is not itself an access.
        #[cfg(feature = "race-detect")]
        let detector = pe.race_detector().map(Arc::clone);
        #[cfg(feature = "race-detect")]
        let rank = pe.rank();
        pe.push_pending(
            bytes,
            Box::new(move || {
                #[cfg(feature = "race-detect")]
                if let Some(d) = &detector {
                    d.write_range(
                        rank,
                        inner.race_id,
                        dst_pe,
                        offset,
                        data.len(),
                        "SymmetricVec::put_nbi (quiet)",
                    );
                }
                let mut region = inner.regions[dst_pe].lock();
                region[offset..offset + data.len()].copy_from_slice(&data);
            }),
        );
        model::PUTMEM_NBI.charge();
        pe.record_net(TransferClass::NonBlockingPut, bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd;

    #[test]
    fn put_is_immediately_visible() {
        let grid = Grid::single_node(2).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u64>(4);
            if pe.rank() == 0 {
                sym.put(pe, 1, 1, &[7, 8]).unwrap();
            }
            pe.barrier_all();
            if pe.rank() == 1 {
                assert_eq!(sym.read_local(pe, |v| v.to_vec()), vec![0, 7, 8, 0]);
            }
        })
        .unwrap();
    }

    #[test]
    fn put_nbi_is_invisible_until_quiet() {
        let grid = Grid::new(2, 1).unwrap(); // 2 nodes so nbi is the natural path
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u64>(1);
            let flag = pe.alloc_sym_atomic(1);
            if pe.rank() == 0 {
                sym.put_nbi(pe, 1, 0, &[42]).unwrap();
                assert_eq!(pe.pending_nbi(), 1);
                // Signal "initiated" — data must NOT be there yet.
                flag.store(pe, 1, 0, 1).unwrap();
                flag.wait_until(pe, 0, |v| v == 1); // wait for PE1's ack
                let flushed = pe.quiet();
                assert_eq!(flushed, 8);
                flag.store(pe, 1, 0, 2).unwrap(); // signal "completed"
            } else {
                flag.wait_until(pe, 0, |v| v == 1);
                assert_eq!(sym.local_get(pe, 0), 0, "nbi data visible before quiet");
                flag.store(pe, 0, 0, 1).unwrap();
                flag.wait_until(pe, 0, |v| v == 2);
                assert_eq!(sym.local_get(pe, 0), 42, "nbi data missing after quiet");
            }
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn barrier_implies_quiet() {
        let grid = Grid::new(2, 1).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u32>(1);
            if pe.rank() == 0 {
                sym.put_nbi(pe, 1, 0, &[9]).unwrap();
            }
            pe.barrier_all();
            if pe.rank() == 1 {
                assert_eq!(sym.local_get(pe, 0), 9);
            }
        })
        .unwrap();
    }

    #[test]
    fn out_of_bounds_put_is_rejected() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u8>(4);
            let err = sym.put(pe, 0, 3, &[1, 2]).unwrap_err();
            assert!(matches!(err, ShmemError::OutOfBounds { .. }));
            let err = sym.put(pe, 5, 0, &[1]).unwrap_err();
            assert!(matches!(err, ShmemError::InvalidPe { .. }));
        })
        .unwrap();
    }

    #[test]
    fn shmem_ptr_only_works_within_node() {
        let grid = Grid::new(2, 2).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u64>(1);
            if pe.rank() == 0 {
                // PE 1 is same node: direct access ok.
                sym.with_same_node(pe, 1, |v| v[0] = 5).unwrap();
                // PE 2 is on node 1: shmem_ptr "returns NULL".
                assert!(sym.with_same_node(pe, 2, |v| v[0] = 5).is_err());
            }
            pe.barrier_all();
            if pe.rank() == 1 {
                assert_eq!(sym.local_get(pe, 0), 5);
            }
        })
        .unwrap();
    }

    #[test]
    fn mismatched_alloc_lengths_error() {
        let grid = Grid::single_node(2).unwrap();
        let results = spmd::run(grid, |pe| {
            SymmetricVec::<u8>::new(pe, pe.rank() + 1).err().is_some()
        })
        .unwrap();
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn net_stats_classify_local_vs_remote() {
        let grid = Grid::new(2, 2).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u8>(16);
            if pe.rank() == 0 {
                sym.put(pe, 1, 0, &[1; 16]).unwrap(); // intra-node
                sym.put(pe, 2, 0, &[1; 16]).unwrap(); // inter-node
                sym.put_nbi(pe, 3, 0, &[1; 8]).unwrap(); // inter-node nbi
                pe.quiet();
                let s = pe.net_stats();
                assert_eq!(s.local_copy.bytes, 16);
                assert_eq!(s.remote_put.bytes, 16);
                assert_eq!(s.nbi_put.bytes, 8);
                assert_eq!(s.quiet.ops, 1);
                assert_eq!(s.quiet.bytes, 8);
            }
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn quiet_with_nothing_pending_is_free() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            assert_eq!(pe.quiet(), 0);
            assert_eq!(pe.net_stats().quiet.ops, 0);
        })
        .unwrap();
    }

    #[test]
    fn get_reads_remote_region() {
        let grid = Grid::new(2, 1).unwrap();
        spmd::run(grid, |pe| {
            let sym = pe.alloc_sym::<u16>(3);
            sym.write_local(pe, |v| {
                let base = pe.rank() as u16 * 10;
                v.copy_from_slice(&[base, base + 1, base + 2]);
            });
            pe.barrier_all();
            let mut buf = [0u16; 2];
            let other = 1 - pe.rank();
            sym.get(pe, other, 1, &mut buf).unwrap();
            assert_eq!(buf, [other as u16 * 10 + 1, other as u16 * 10 + 2]);
            pe.barrier_all();
        })
        .unwrap();
    }
}
