//! Cross-process-capable Ipc transport: one shared-memory segment
//! (`memfd_create` + `mmap`, no external crates) holding a per-(src,dst)
//! SPSC ring mailbox per PE pair, plus header words for counters, fault
//! notes, a cross-process barrier, and per-PE result slots.
//!
//! Two usage modes share the same segment layout:
//!
//! - **Threaded** ([`IpcTransport::for_threads`]): the world's PEs stay OS
//!   threads in one process; every cross-node transfer is staged into its
//!   mailbox and immediately drained with header verification. This mode
//!   carries the full generality of the app suite and is what the
//!   cross-backend equivalence matrix runs.
//! - **Forked** ([`IpcTransport::coordinator`] / [`IpcTransport::attach`]):
//!   `spmd::run_forked` spawns worker processes that inherit the segment
//!   fd and exchange frames through the same mailboxes via
//!   [`IpcEndpoint`], with rendezvous over the UDS control plane
//!   ([`super::control`]).
//!
//! All mailbox cursors are monotonic `AtomicU64`s (never wrapped), so
//! fill = `head - tail` needs no full/empty disambiguation; offsets into
//! the ring are `cursor % ring_bytes`. Frames are 8-byte aligned: a
//! 16-byte header (`word0` = magic | class | payload length, `word1` =
//! the staging cursor as a sequence number) followed by the payload
//! padded to 8 bytes.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use super::{FaultEvent, IpcConfig, Transport, TransportKind, TransportStats};
use crate::error::ShmemError;
use crate::net::TransferClass;

/// First header word: identifies a mapped segment as ours.
const SEGMENT_MAGIC: u64 = 0xFAB5_0001_1DC0_0D5E;

// Header word indices (all `AtomicU64`).
const W_MAGIC: usize = 0;
const W_N_PES: usize = 1;
const W_RING_BYTES: usize = 2;
const W_FRAMES: usize = 3;
const W_FRAME_BYTES: usize = 4;
const W_FLUSHES: usize = 5;
const W_RENDEZVOUS: usize = 6;
const W_KILLS: usize = 7;
const W_RETRIES: usize = 8;
/// Rank of a dead PE (`u64::MAX` = none). Set by `note_fault(Kill)` and
/// by dying forked workers; read by barrier spins and the coordinator.
const W_DEATH_RANK: usize = 9;
const W_DEATH_SUPERSTEP: usize = 10;
const W_ATTEMPT: usize = 11;
const W_BARRIER_ARRIVED: usize = 12;
const W_BARRIER_GEN: usize = 13;
const HEADER_WORDS: usize = 16;

/// Byte 0 of every frame header word0.
const FRAME_MAGIC: u64 = 0xF5;
/// Frame header size in bytes (two u64 words).
const FRAME_HEADER: usize = 16;

fn round8(n: usize) -> usize {
    (n + 7) & !7
}

fn class_code(class: TransferClass) -> u64 {
    match class {
        TransferClass::LocalCopy => 0,
        TransferClass::RemotePut => 1,
        TransferClass::RemoteGet => 2,
        TransferClass::NonBlockingPut => 3,
        TransferClass::Quiet => 4,
        TransferClass::Atomic => 5,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_char, c_int, c_uint, c_void};

    // Raw libc declarations: std already links libc, and the repo's
    // no-new-deps rule forbids the `libc` crate (same pattern as
    // `sched_setaffinity` in spmd.rs).
    extern "C" {
        pub fn memfd_create(name: *const c_char, flags: c_uint) -> c_int;
        pub fn ftruncate(fd: c_int, length: i64) -> c_int;
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const F_SETFD: c_int = 2;
}

/// A process-shared memory region: `memfd_create` + `mmap(MAP_SHARED)` on
/// Linux. The fd is kept so forked workers can inherit and re-map it.
pub struct Segment {
    base: *mut u8,
    len: usize,
    fd: i32,
}

// SAFETY: the segment is a raw shared-memory region; all access goes
// through `&AtomicU64` header/cursor words or through ring byte ranges
// whose exclusivity is guaranteed by the SPSC cursor protocol
// (Release-publish by the producer, Acquire-observe by the consumer).
unsafe impl Send for Segment {}
// SAFETY: see `Send` — shared references only expose atomic words and
// cursor-guarded byte ranges.
unsafe impl Sync for Segment {}

impl Segment {
    /// Create an anonymous shared segment of `len` bytes, zero-filled.
    #[cfg(target_os = "linux")]
    pub fn create(len: usize) -> Result<Segment, ShmemError> {
        // SAFETY: memfd_create with a NUL-terminated static name and no
        // flags; the fd is checked before use.
        let fd = unsafe { sys::memfd_create(c"fabsp-ipc".as_ptr(), 0) };
        if fd < 0 {
            return Err(ShmemError::TransportSetup("memfd_create failed".into()));
        }
        // SAFETY: fd is a fresh memfd; ftruncate sizes it to `len`.
        if unsafe { sys::ftruncate(fd, len as i64) } != 0 {
            // SAFETY: fd came from memfd_create above and is still open.
            unsafe { sys::close(fd) };
            return Err(ShmemError::TransportSetup(format!(
                "ftruncate({len}) failed"
            )));
        }
        Segment::map(fd, len)
    }

    /// Map an inherited segment fd (forked-worker side).
    #[cfg(target_os = "linux")]
    pub fn attach(fd: i32, len: usize) -> Result<Segment, ShmemError> {
        Segment::map(fd, len)
    }

    #[cfg(target_os = "linux")]
    fn map(fd: i32, len: usize) -> Result<Segment, ShmemError> {
        // SAFETY: mmap of a sized memfd with PROT_READ|PROT_WRITE and
        // MAP_SHARED; the result is checked against MAP_FAILED (-1).
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                fd,
                0,
            )
        };
        if base as isize == -1 {
            return Err(ShmemError::TransportSetup(format!("mmap({len}) failed")));
        }
        Ok(Segment {
            base: base as *mut u8,
            len,
            fd,
        })
    }

    /// Fallback for non-Linux hosts: heap-backed, single-process only
    /// (forked launch is unsupported without memfd inheritance).
    #[cfg(not(target_os = "linux"))]
    pub fn create(len: usize) -> Result<Segment, ShmemError> {
        let words = vec![0u64; len.div_ceil(8)].into_boxed_slice();
        let base = Box::into_raw(words) as *mut u8;
        Ok(Segment { base, len, fd: -1 })
    }

    #[cfg(not(target_os = "linux"))]
    pub fn attach(_fd: i32, _len: usize) -> Result<Segment, ShmemError> {
        Err(ShmemError::TransportSetup(
            "segment attach requires Linux memfd".into(),
        ))
    }

    /// Clear close-on-exec on the segment fd so a spawned worker process
    /// inherits it (forked launch mode).
    #[cfg(target_os = "linux")]
    pub fn make_inheritable(&self) -> Result<(), ShmemError> {
        // SAFETY: fcntl(F_SETFD, 0) on our own open fd clears FD_CLOEXEC.
        if unsafe { sys::fcntl(self.fd, sys::F_SETFD, 0) } != 0 {
            return Err(ShmemError::TransportSetup("fcntl(F_SETFD) failed".into()));
        }
        Ok(())
    }

    /// The raw fd (for passing to forked workers via env).
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a live transport).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `idx`-th u64 of the segment as an atomic.
    #[inline]
    fn word(&self, idx: usize) -> &AtomicU64 {
        debug_assert!(idx * 8 + 8 <= self.len);
        // SAFETY: the segment is 8-aligned (page-aligned mmap / u64 heap
        // fallback), `idx` is bounds-checked above, and AtomicU64 has the
        // same layout as u64; concurrent access is the point of atomics.
        unsafe { &*(self.base.add(idx * 8) as *const AtomicU64) }
    }

    #[inline]
    fn byte_ptr(&self, off: usize) -> *mut u8 {
        debug_assert!(off <= self.len);
        // SAFETY: offset is bounds-checked; callers guarantee exclusive
        // or cursor-guarded access to the addressed range.
        unsafe { self.base.add(off) }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        // SAFETY: base/len are the live mapping from mmap and fd is our
        // open memfd; both are released exactly once here.
        unsafe {
            sys::munmap(self.base as *mut std::os::raw::c_void, self.len);
            sys::close(self.fd);
        }
        #[cfg(not(target_os = "linux"))]
        // SAFETY: base was produced by Box::into_raw over `len/8` u64s in
        // `create` and is dropped exactly once here.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.base as *mut u64,
                self.len / 8,
            )));
        }
    }
}

/// The Ipc backend proper. See the module docs for the two usage modes.
pub struct IpcTransport {
    seg: Segment,
    n_pes: usize,
    ring_bytes: usize,
    /// Threaded mode: every carry drains its own mailbox immediately
    /// (stage → verify → consume), so the backend is always quiescent
    /// between ops and no progress thread is needed.
    immediate_drain: bool,
}

impl IpcTransport {
    fn layout(n_pes: usize, ring_bytes: usize) -> (usize, usize, usize, usize) {
        let results_off = HEADER_WORDS * 8;
        let cursors_off = results_off + n_pes * 8;
        let rings_off = cursors_off + n_pes * n_pes * 16;
        let total = rings_off + n_pes * n_pes * ring_bytes;
        (results_off, cursors_off, rings_off, total)
    }

    fn with_segment(
        seg: Segment,
        n_pes: usize,
        ring_bytes: usize,
        immediate_drain: bool,
    ) -> IpcTransport {
        IpcTransport {
            seg,
            n_pes,
            ring_bytes,
            immediate_drain,
        }
    }

    fn create(n_pes: usize, cfg: IpcConfig, immediate_drain: bool) -> Result<IpcTransport, ShmemError> {
        let ring_bytes = round8(cfg.ring_bytes.max(FRAME_HEADER));
        let (_, _, _, total) = IpcTransport::layout(n_pes, ring_bytes);
        let seg = Segment::create(total)?;
        let t = IpcTransport::with_segment(seg, n_pes, ring_bytes, immediate_drain);
        t.seg.word(W_MAGIC).store(SEGMENT_MAGIC, Ordering::Relaxed);
        t.seg.word(W_N_PES).store(n_pes as u64, Ordering::Relaxed);
        t.seg
            .word(W_RING_BYTES)
            .store(ring_bytes as u64, Ordering::Relaxed);
        t.seg.word(W_DEATH_RANK).store(u64::MAX, Ordering::Release);
        Ok(t)
    }

    /// Threaded mode: PEs are threads of this process (the default way
    /// `spmd::run` hosts a world); carries drain immediately.
    pub fn for_threads(n_pes: usize, cfg: IpcConfig) -> Result<IpcTransport, ShmemError> {
        IpcTransport::create(n_pes, cfg, true)
    }

    /// Forked mode, coordinator side: create the segment that worker
    /// processes will inherit. Frames stay in the mailboxes until the
    /// destination endpoint drains them.
    pub fn coordinator(n_pes: usize, cfg: IpcConfig) -> Result<IpcTransport, ShmemError> {
        let t = IpcTransport::create(n_pes, cfg, false)?;
        #[cfg(target_os = "linux")]
        t.seg.make_inheritable()?;
        Ok(t)
    }

    /// Forked mode, worker side: map the inherited segment fd and verify
    /// its header matches this worker's expectations.
    pub fn attach(fd: i32, n_pes: usize, cfg: IpcConfig) -> Result<IpcTransport, ShmemError> {
        let ring_bytes = round8(cfg.ring_bytes.max(FRAME_HEADER));
        let (_, _, _, total) = IpcTransport::layout(n_pes, ring_bytes);
        let seg = Segment::attach(fd, total)?;
        let t = IpcTransport::with_segment(seg, n_pes, ring_bytes, false);
        if t.seg.word(W_MAGIC).load(Ordering::Relaxed) != SEGMENT_MAGIC
            || t.seg.word(W_N_PES).load(Ordering::Relaxed) != n_pes as u64
            || t.seg.word(W_RING_BYTES).load(Ordering::Relaxed) != ring_bytes as u64
        {
            return Err(ShmemError::TransportSetup(
                "attached segment header mismatch".into(),
            ));
        }
        Ok(t)
    }

    /// Number of PEs the segment was sized for.
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Per-mailbox ring capacity in bytes.
    pub fn ring_bytes(&self) -> usize {
        self.ring_bytes
    }

    /// The segment fd for env-passing to forked workers.
    pub fn segment_fd(&self) -> i32 {
        self.seg.fd()
    }

    fn mailbox(&self, src: usize, dst: usize) -> usize {
        debug_assert!(src < self.n_pes && dst < self.n_pes);
        src * self.n_pes + dst
    }

    fn head(&self, m: usize) -> &AtomicU64 {
        let (_, cursors_off, _, _) = IpcTransport::layout(self.n_pes, self.ring_bytes);
        self.seg.word(cursors_off / 8 + m * 2)
    }

    fn tail(&self, m: usize) -> &AtomicU64 {
        let (_, cursors_off, _, _) = IpcTransport::layout(self.n_pes, self.ring_bytes);
        self.seg.word(cursors_off / 8 + m * 2 + 1)
    }

    fn ring_base(&self, m: usize) -> usize {
        let (_, _, rings_off, _) = IpcTransport::layout(self.n_pes, self.ring_bytes);
        rings_off + m * self.ring_bytes
    }

    /// Copy `len` raw bytes into mailbox `m` at monotonic cursor `at`,
    /// wrapping across the ring end if needed.
    fn ring_write(&self, m: usize, at: u64, src: *const u8, len: usize) {
        let base = self.ring_base(m);
        let off = (at % self.ring_bytes as u64) as usize;
        let first = len.min(self.ring_bytes - off);
        // SAFETY: the destination ranges lie inside mailbox `m`'s ring
        // (bounds: base + ring_bytes ≤ segment len by layout), and the
        // SPSC protocol gives the producer exclusive access to the
        // [tail, head+len) staging range until the Release cursor store.
        unsafe {
            std::ptr::copy_nonoverlapping(src, self.seg.byte_ptr(base + off), first);
            if first < len {
                std::ptr::copy_nonoverlapping(src.add(first), self.seg.byte_ptr(base), len - first);
            }
        }
    }

    /// Read one aligned u64 from mailbox `m` at monotonic cursor `at`
    /// (frame headers are always 8-aligned, so no wrap inside the word).
    fn ring_read_word(&self, m: usize, at: u64) -> u64 {
        let base = self.ring_base(m);
        let off = (at % self.ring_bytes as u64) as usize;
        let mut buf = [0u8; 8];
        // SAFETY: the source range is inside mailbox `m`'s ring and the
        // consumer owns [tail, head) after its Acquire load of head.
        unsafe {
            std::ptr::copy_nonoverlapping(self.seg.byte_ptr(base + off), buf.as_mut_ptr(), 8);
        }
        u64::from_le_bytes(buf)
    }

    /// Verify and consume every staged frame in mailbox (src → dst).
    /// Returns the number of frames drained; panics on a corrupt frame
    /// (header verification is the point of staging through the ring).
    fn drain_mailbox(&self, src: usize, dst: usize) -> usize {
        let m = self.mailbox(src, dst);
        let head = self.head(m).load(Ordering::Acquire);
        let mut t = self.tail(m).load(Ordering::Relaxed);
        let mut drained = 0usize;
        while t < head {
            let word0 = self.ring_read_word(m, t);
            let seq = self.ring_read_word(m, t + 8);
            assert_eq!(word0 & 0xFF, FRAME_MAGIC, "ipc frame magic ({src}->{dst})");
            assert_eq!(seq, t, "ipc frame sequence ({src}->{dst})");
            let len = (word0 >> 16) as usize;
            t += (FRAME_HEADER + round8(len)) as u64;
            drained += 1;
        }
        self.tail(m).store(t, Ordering::Release);
        drained
    }

    /// Stage one frame without draining (forked-endpoint send path).
    fn stage(
        &self,
        src: usize,
        dst: usize,
        class: TransferClass,
        payload: &[MaybeUninit<u8>],
    ) -> Result<(), ShmemError> {
        let framed = FRAME_HEADER + round8(payload.len());
        let m = self.mailbox(src, dst);
        let head = self.head(m).load(Ordering::Relaxed);
        let tail = self.tail(m).load(Ordering::Acquire);
        let available = self.ring_bytes - (head - tail) as usize;
        if framed > available || framed > self.ring_bytes {
            return Err(ShmemError::SegmentExhausted {
                needed: framed,
                available: available.min(self.ring_bytes),
                ring_bytes: self.ring_bytes,
            });
        }
        let word0 = FRAME_MAGIC | (class_code(class) << 8) | ((payload.len() as u64) << 16);
        self.ring_write(m, head, word0.to_le_bytes().as_ptr(), 8);
        self.ring_write(m, head + 8, head.to_le_bytes().as_ptr(), 8);
        if !payload.is_empty() {
            self.ring_write(
                m,
                head + FRAME_HEADER as u64,
                payload.as_ptr() as *const u8,
                payload.len(),
            );
        }
        self.head(m).store(head + framed as u64, Ordering::Release);
        self.seg.word(W_FRAMES).fetch_add(1, Ordering::Relaxed);
        self.seg
            .word(W_FRAME_BYTES)
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Consume the oldest staged frame in mailbox (src → dst), if any,
    /// returning its class code and payload (forked-endpoint recv path).
    fn pop(&self, src: usize, dst: usize) -> Option<(u64, Vec<u8>)> {
        let m = self.mailbox(src, dst);
        let head = self.head(m).load(Ordering::Acquire);
        let t = self.tail(m).load(Ordering::Relaxed);
        if t >= head {
            return None;
        }
        let word0 = self.ring_read_word(m, t);
        let seq = self.ring_read_word(m, t + 8);
        assert_eq!(word0 & 0xFF, FRAME_MAGIC, "ipc frame magic ({src}->{dst})");
        assert_eq!(seq, t, "ipc frame sequence ({src}->{dst})");
        let len = (word0 >> 16) as usize;
        let mut payload = vec![0u8; len];
        let base = self.ring_base(m);
        let off = ((t + FRAME_HEADER as u64) % self.ring_bytes as u64) as usize;
        let first = len.min(self.ring_bytes - off);
        // SAFETY: the payload range [tail+16, tail+16+len) is consumer-
        // owned after the Acquire head load; copies stay inside the ring.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.seg.byte_ptr(base + off),
                payload.as_mut_ptr(),
                first,
            );
            if first < len {
                std::ptr::copy_nonoverlapping(
                    self.seg.byte_ptr(base),
                    payload.as_mut_ptr().add(first),
                    len - first,
                );
            }
        }
        self.tail(m)
            .store(t + (FRAME_HEADER + round8(len)) as u64, Ordering::Release);
        Some(((word0 >> 8) & 0xFF, payload))
    }

    /// Store PE `pe`'s result word (forked workers report through the
    /// segment; the coordinator reads after DONE).
    pub fn set_result(&self, pe: usize, value: u64) {
        let (results_off, _, _, _) = IpcTransport::layout(self.n_pes, self.ring_bytes);
        self.seg.word(results_off / 8 + pe).store(value, Ordering::Release);
    }

    /// Read PE `pe`'s result word.
    pub fn result(&self, pe: usize) -> u64 {
        let (results_off, _, _, _) = IpcTransport::layout(self.n_pes, self.ring_bytes);
        self.seg.word(results_off / 8 + pe).load(Ordering::Acquire)
    }

    /// Record a dead PE in the segment (forked workers call this before
    /// exiting on an injected kill; `note_fault` routes here too).
    pub fn record_death(&self, pe: u64, superstep: u64) {
        self.seg
            .word(W_DEATH_SUPERSTEP)
            .store(superstep, Ordering::Relaxed);
        self.seg.word(W_KILLS).fetch_add(1, Ordering::Relaxed);
        self.seg.word(W_DEATH_RANK).store(pe, Ordering::Release);
    }

    /// The recorded death, if any: `(rank, superstep)`.
    pub fn death(&self) -> Option<(u64, u64)> {
        let rank = self.seg.word(W_DEATH_RANK).load(Ordering::Acquire);
        if rank == u64::MAX {
            None
        } else {
            Some((rank, self.seg.word(W_DEATH_SUPERSTEP).load(Ordering::Relaxed)))
        }
    }

    /// Clear fault notes and barrier state for a fresh attempt (restart).
    pub fn reset_for_attempt(&self, attempt: u64) {
        self.seg.word(W_DEATH_RANK).store(u64::MAX, Ordering::Relaxed);
        self.seg.word(W_DEATH_SUPERSTEP).store(0, Ordering::Relaxed);
        self.seg.word(W_BARRIER_ARRIVED).store(0, Ordering::Relaxed);
        self.seg.word(W_BARRIER_GEN).store(0, Ordering::Relaxed);
        for m in 0..self.n_pes * self.n_pes {
            self.head(m).store(0, Ordering::Relaxed);
            self.tail(m).store(0, Ordering::Relaxed);
        }
        self.seg.word(W_ATTEMPT).store(attempt, Ordering::Release);
    }

    /// Current attempt number published by the coordinator.
    pub fn attempt(&self) -> u64 {
        self.seg.word(W_ATTEMPT).load(Ordering::Acquire)
    }

    /// Cross-process sense-reversing barrier over the segment's header
    /// words. Aborts with `Err` when a peer death is recorded or
    /// `timeout` elapses (a dead peer must surface as an error, not a
    /// hang).
    pub fn process_barrier(
        &self,
        participants: usize,
        timeout: Duration,
    ) -> Result<(), ShmemError> {
        let gen = self.seg.word(W_BARRIER_GEN).load(Ordering::Acquire);
        let arrived = self.seg.word(W_BARRIER_ARRIVED).fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == participants as u64 {
            self.seg.word(W_BARRIER_ARRIVED).store(0, Ordering::Relaxed);
            self.seg.word(W_BARRIER_GEN).fetch_add(1, Ordering::AcqRel);
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        while self.seg.word(W_BARRIER_GEN).load(Ordering::Acquire) == gen {
            if let Some((rank, step)) = self.death() {
                return Err(ShmemError::PePanicked {
                    pe: rank as usize,
                    message: format!("peer PE {rank} died at superstep {step} (ipc barrier abort)"),
                });
            }
            if Instant::now() >= deadline {
                return Err(ShmemError::TransportRendezvous {
                    waited_ms: timeout.as_millis() as u64,
                    detail: format!(
                        "process barrier generation {gen} never completed ({participants} expected)"
                    ),
                });
            }
            std::hint::spin_loop();
            std::thread::sleep(Duration::from_micros(50));
        }
        Ok(())
    }
}

impl Transport for IpcTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Ipc
    }

    fn carry(
        &self,
        src: usize,
        dst: usize,
        class: TransferClass,
        payload: &[MaybeUninit<u8>],
    ) -> Result<(), ShmemError> {
        self.stage(src, dst, class, payload)?;
        if self.immediate_drain {
            self.drain_mailbox(src, dst);
        }
        Ok(())
    }

    fn flush(&self, src: usize) -> Result<(), ShmemError> {
        self.seg.word(W_FLUSHES).fetch_add(1, Ordering::Relaxed);
        if self.immediate_drain {
            for dst in 0..self.n_pes {
                self.drain_mailbox(src, dst);
            }
        }
        Ok(())
    }

    fn rendezvous_note(&self, _pe: usize) {
        self.seg.word(W_RENDEZVOUS).fetch_add(1, Ordering::Relaxed);
    }

    fn note_fault(&self, event: FaultEvent) {
        match event {
            FaultEvent::Kill { pe, superstep } => self.record_death(pe as u64, superstep as u64),
            FaultEvent::Retry { pe: _ } => {
                self.seg.word(W_RETRIES).fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn quiescent(&self) -> bool {
        (0..self.n_pes * self.n_pes)
            .all(|m| self.head(m).load(Ordering::Acquire) == self.tail(m).load(Ordering::Acquire))
    }

    fn stats(&self) -> TransportStats {
        let w = |i: usize| self.seg.word(i).load(Ordering::Relaxed);
        TransportStats {
            frames: w(W_FRAMES),
            frame_bytes: w(W_FRAME_BYTES),
            flushes: w(W_FLUSHES),
            rendezvous: w(W_RENDEZVOUS),
            kills: w(W_KILLS),
            retries: w(W_RETRIES),
        }
    }
}

/// Restricted message-passing surface a forked worker PE gets: send/recv
/// frames through the segment mailboxes, barrier with peers, and publish
/// a result word. Deliberately *not* the full [`crate::Pe`] API — forked
/// workers own their address spaces, so the symmetric heap's shared-vec
/// machinery does not apply.
pub struct IpcEndpoint {
    transport: std::sync::Arc<IpcTransport>,
    rank: usize,
    /// Kill fault routed to this worker (attempt 0 only, like the
    /// threaded path's [`crate::Pe::end_superstep`]).
    kill: Option<crate::net::KillSpec>,
    attempt: u64,
}

impl IpcEndpoint {
    /// Wrap `transport` as rank `rank`'s endpoint.
    pub fn new(transport: std::sync::Arc<IpcTransport>, rank: usize) -> IpcEndpoint {
        IpcEndpoint {
            transport,
            rank,
            kill: None,
            attempt: 0,
        }
    }

    /// Attach the run's kill fault and attempt number (forked launch).
    pub fn with_fault(mut self, kill: Option<crate::net::KillSpec>, attempt: u64) -> IpcEndpoint {
        self.kill = kill;
        self.attempt = attempt;
        self
    }

    /// Leave superstep `superstep`: if the fault plan kills this rank here
    /// on attempt 0, record the death in the segment and fail-stop the
    /// whole worker process (the node-death model — sibling PE threads in
    /// this process die with it, and peers' barriers abort on the note).
    pub fn end_superstep(&self, superstep: u64) {
        if let Some(kill) = self.kill {
            if self.attempt == 0
                && kill.rank as usize == self.rank
                && u64::from(kill.at_superstep) == superstep
            {
                self.transport.record_death(self.rank as u64, superstep);
                std::process::exit(101);
            }
        }
    }

    /// This endpoint's PE rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn n_pes(&self) -> usize {
        self.transport.n_pes()
    }

    /// The backing transport (error-path tests poke counters directly).
    pub fn transport(&self) -> &IpcTransport {
        &self.transport
    }

    /// Send `payload` to `dst`'s mailbox. Fails with
    /// [`ShmemError::SegmentExhausted`] when the frame cannot fit.
    pub fn send(&self, dst: usize, payload: &[u8]) -> Result<(), ShmemError> {
        self.transport
            .stage(self.rank, dst, TransferClass::RemotePut, super::payload_bytes(payload))
    }

    /// Receive the oldest pending frame from `src`, if any.
    pub fn try_recv(&self, src: usize) -> Option<Vec<u8>> {
        self.transport.pop(src, self.rank).map(|(_, p)| p)
    }

    /// Block until a frame from `src` arrives or `timeout` elapses.
    pub fn recv(&self, src: usize, timeout: Duration) -> Result<Vec<u8>, ShmemError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.try_recv(src) {
                return Ok(p);
            }
            if Instant::now() >= deadline {
                return Err(ShmemError::TransportRendezvous {
                    waited_ms: timeout.as_millis() as u64,
                    detail: format!("recv from PE {src} timed out"),
                });
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Barrier with every PE in the forked world.
    pub fn barrier(&self, timeout: Duration) -> Result<(), ShmemError> {
        self.transport.rendezvous_note(self.rank);
        self.transport.process_barrier(self.transport.n_pes(), timeout)
    }

    /// Publish this PE's result word.
    pub fn set_result(&self, value: u64) {
        self.transport.set_result(self.rank, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::payload_bytes;

    #[test]
    fn carry_roundtrips_and_counts() {
        let t = IpcTransport::for_threads(4, IpcConfig::default()).unwrap();
        let data = [0xABu64; 8];
        t.carry(0, 3, TransferClass::RemotePut, payload_bytes(&data))
            .unwrap();
        t.carry(1, 2, TransferClass::Atomic, payload_bytes(&[7u64, 9]))
            .unwrap();
        t.flush(0).unwrap();
        let s = t.stats();
        assert_eq!(s.frames, 2);
        assert_eq!(s.frame_bytes, 64 + 16);
        assert_eq!(s.flushes, 1);
        assert!(t.quiescent());
    }

    #[test]
    fn staged_frames_pop_in_order() {
        let t = IpcTransport::coordinator(2, IpcConfig { ring_bytes: 256 }).unwrap();
        t.stage(0, 1, TransferClass::RemotePut, payload_bytes(&[1u8, 2, 3]))
            .unwrap();
        t.stage(0, 1, TransferClass::RemotePut, payload_bytes(&[4u8]))
            .unwrap();
        assert!(!t.quiescent());
        let (class, p) = t.pop(0, 1).unwrap();
        assert_eq!(class, class_code(TransferClass::RemotePut));
        assert_eq!(p, vec![1, 2, 3]);
        assert_eq!(t.pop(0, 1).unwrap().1, vec![4]);
        assert!(t.pop(0, 1).is_none());
        assert!(t.quiescent());
    }

    #[test]
    fn exhaustion_is_typed() {
        let t = IpcTransport::coordinator(2, IpcConfig { ring_bytes: 64 }).unwrap();
        let big = [0u8; 256];
        let err = t
            .stage(0, 1, TransferClass::RemotePut, payload_bytes(&big))
            .unwrap_err();
        match err {
            ShmemError::SegmentExhausted {
                needed,
                available,
                ring_bytes,
            } => {
                assert_eq!(needed, FRAME_HEADER + 256);
                assert_eq!(ring_bytes, 64);
                assert!(available <= 64);
            }
            other => panic!("expected SegmentExhausted, got {other:?}"),
        }
        // Filling without draining also exhausts.
        for _ in 0..3 {
            let _ = t.stage(0, 1, TransferClass::RemotePut, payload_bytes(&[0u8; 8]));
        }
        let err = t
            .stage(0, 1, TransferClass::RemotePut, payload_bytes(&[0u8; 8]))
            .unwrap_err();
        assert!(matches!(err, ShmemError::SegmentExhausted { .. }));
    }

    #[test]
    fn frames_wrap_across_ring_end() {
        let t = IpcTransport::coordinator(2, IpcConfig { ring_bytes: 64 }).unwrap();
        for round in 0..10u8 {
            t.stage(0, 1, TransferClass::RemotePut, payload_bytes(&[round; 24]))
                .unwrap();
            let (_, p) = t.pop(0, 1).unwrap();
            assert_eq!(p, vec![round; 24]);
        }
    }

    #[test]
    fn death_note_roundtrip() {
        let t = IpcTransport::for_threads(2, IpcConfig::default()).unwrap();
        assert!(t.death().is_none());
        t.note_fault(FaultEvent::Kill {
            pe: 1,
            superstep: 3,
        });
        assert_eq!(t.death(), Some((1, 3)));
        assert_eq!(t.stats().kills, 1);
        t.reset_for_attempt(1);
        assert!(t.death().is_none());
        assert_eq!(t.attempt(), 1);
    }

    #[test]
    fn endpoint_send_recv_between_threads() {
        let t = std::sync::Arc::new(IpcTransport::coordinator(2, IpcConfig::default()).unwrap());
        let a = IpcEndpoint::new(t.clone(), 0);
        let b = IpcEndpoint::new(t.clone(), 1);
        let handle = std::thread::spawn(move || {
            let got = b.recv(0, Duration::from_secs(5)).unwrap();
            b.send(0, &got).unwrap();
        });
        a.send(1, b"ping").unwrap();
        assert_eq!(a.recv(1, Duration::from_secs(5)).unwrap(), b"ping");
        handle.join().unwrap();
    }
}
