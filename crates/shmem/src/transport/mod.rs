//! Pluggable transport layer under the symmetric heap.
//!
//! The substrate's deferred-nbi/retry/ledger machinery ([`crate::net`])
//! classifies and counts traffic; this module abstracts *how* that traffic
//! is carried between PEs. Two backends implement the [`Transport`] trait:
//!
//! - [`InProc`](TransportKind::InProc): the existing same-address-space
//!   memcpy path. Every hook is a no-op behind one enum-discriminant
//!   check, so the 157M it/s hot path is untouched (gated by
//!   `ACTORPROF_TRANSPORT_GATE_PCT` in bench-smoke).
//! - [`Ipc`](TransportKind::Ipc): a cross-process-capable backend built on
//!   a shared-memory segment (`memfd_create` + `mmap`, no new deps) with a
//!   per-(src,dst) SPSC ring mailbox and a small Unix-domain-socket
//!   control plane ([`control`]) for rendezvous and rank assignment.
//!
//! The contract both backends honour — and the one the cross-backend
//! conformance suite (`tests/transport_equivalence.rs`) pins down — is
//! **carry-at-initiation**: every cross-node transfer is handed to the
//! transport at the instant the SHMEM op initiates it, *before* any
//! scheduling point or fault roll the op would take anyway. The transport
//! adds no scheduling points, no fault rolls, and no reordering of its
//! own, so logical traces, result digests, and `RecoveryLog`s are
//! bit-identical across backends by construction.

pub mod control;
pub mod ipc;

use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::error::ShmemError;
use crate::net::TransferClass;

/// Which backend carries cross-node traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Same-address-space memcpy (default; zero-cost hooks).
    InProc,
    /// Shared-memory segment with per-(src,dst) ring mailboxes.
    Ipc,
}

impl TransportKind {
    /// Stable lowercase name (used in bench JSON and CI lane names).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::InProc => "inproc",
            TransportKind::Ipc => "ipc",
        }
    }
}

/// Tuning knobs for the [`Ipc`](TransportKind::Ipc) backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpcConfig {
    /// Capacity of each (src,dst) ring mailbox in bytes. A single carried
    /// frame (16-byte header + padded payload) must fit or the carry
    /// returns [`ShmemError::SegmentExhausted`].
    pub ring_bytes: usize,
}

impl Default for IpcConfig {
    fn default() -> IpcConfig {
        IpcConfig {
            ring_bytes: 64 * 1024,
        }
    }
}

/// Per-run transport selection. `Copy + Eq + Hash` like
/// [`crate::sched::SchedSpec`] and [`crate::FaultSpec`] so a run's
/// transport is a replayable test input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportSpec {
    /// The in-process memcpy path (default).
    #[default]
    InProc,
    /// The shared-memory-segment backend.
    Ipc(IpcConfig),
}

impl TransportSpec {
    /// The Ipc backend with default ring capacity.
    pub fn ipc() -> TransportSpec {
        TransportSpec::Ipc(IpcConfig::default())
    }

    /// The Ipc backend with an explicit per-mailbox ring capacity.
    pub fn ipc_with_ring_bytes(ring_bytes: usize) -> TransportSpec {
        TransportSpec::Ipc(IpcConfig { ring_bytes })
    }

    /// The backend this spec selects.
    pub fn kind(&self) -> TransportKind {
        match self {
            TransportSpec::InProc => TransportKind::InProc,
            TransportSpec::Ipc(_) => TransportKind::Ipc,
        }
    }
}

/// Fault events the substrate routes through the transport so both
/// backends observe the same failure narrative ([`crate::FaultSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A PE died at a superstep boundary ([`crate::KillSpec`]).
    Kill { pe: u32, superstep: u32 },
    /// One network-op attempt timed out and will be retried
    /// ([`crate::NetFlaky`]).
    Retry { pe: u32 },
}

/// Aggregate counters a transport backend keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames carried through the backend's mailboxes.
    pub frames: u64,
    /// Payload bytes inside those frames (pre-padding).
    pub frame_bytes: u64,
    /// Flush/quiet drains observed.
    pub flushes: u64,
    /// Barrier/collective rendezvous notes.
    pub rendezvous: u64,
    /// Kill events routed through [`Transport::note_fault`].
    pub kills: u64,
    /// Retry events routed through [`Transport::note_fault`].
    pub retries: u64,
}

/// The transport contract.
///
/// Hooks are called from PE threads on hot paths, so implementations must
/// be wait-free or lock-free on [`carry`](Transport::carry),
/// [`flush`](Transport::flush) and [`note_fault`](Transport::note_fault);
/// locks are permitted only in rendezvous/setup (cold) paths. No hook may
/// introduce a scheduling point, a fault roll, or panic on the fast path —
/// errors are surfaced as typed [`ShmemError`] values.
pub trait Transport: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;

    /// Carry `payload` from PE `src` to PE `dst`, classified as `class`.
    /// Called at initiation time for every cross-node transfer (put, get
    /// response, nbi-put staging, atomic command frame). The payload is a
    /// raw byte view (`MaybeUninit` because `T`'s padding bytes may be
    /// uninitialized); implementations copy it untyped and never read it
    /// as values.
    fn carry(
        &self,
        src: usize,
        dst: usize,
        class: TransferClass,
        payload: &[MaybeUninit<u8>],
    ) -> Result<(), ShmemError>;

    /// Drain completion for PE `src`'s outstanding carried frames
    /// (quiet/fence). Counted, and a no-op when already quiescent.
    fn flush(&self, src: usize) -> Result<(), ShmemError>;

    /// Note that PE `pe` reached a barrier/collective rendezvous point.
    fn rendezvous_note(&self, pe: usize);

    /// Route a fault-injection event through the backend.
    fn note_fault(&self, event: FaultEvent);

    /// Whether the backend holds no undelivered frames (checkpoint cuts
    /// require this in addition to the nbi-pending check).
    fn quiescent(&self) -> bool;

    /// Snapshot of the backend's own activity counters.
    fn stats(&self) -> TransportStats;
}

/// The in-process backend: every hook is a no-op. Cross-node traffic is
/// the direct memcpy the symmetric heap already performs; there is nothing
/// to carry, so this type exists to make the trait's "do nothing" case
/// explicit and testable.
#[derive(Debug, Default, Clone, Copy)]
pub struct InProcTransport;

impl Transport for InProcTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::InProc
    }

    #[inline]
    fn carry(
        &self,
        _src: usize,
        _dst: usize,
        _class: TransferClass,
        _payload: &[MaybeUninit<u8>],
    ) -> Result<(), ShmemError> {
        Ok(())
    }

    #[inline]
    fn flush(&self, _src: usize) -> Result<(), ShmemError> {
        Ok(())
    }

    #[inline]
    fn rendezvous_note(&self, _pe: usize) {}

    #[inline]
    fn note_fault(&self, _event: FaultEvent) {}

    fn quiescent(&self) -> bool {
        true
    }

    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

static INPROC: InProcTransport = InProcTransport;

/// Enum-dispatch handle stored per world. Hot paths pay one discriminant
/// check on `InProc` instead of a vtable call — measured zero-delta on the
/// SPSC hot path (bench-smoke gate).
#[derive(Clone)]
pub enum TransportHandle {
    /// No-op backend.
    InProc,
    /// Shared-memory-segment backend.
    Ipc(Arc<ipc::IpcTransport>),
}

impl TransportHandle {
    /// Instantiate the backend `spec` selects for a world of `n_pes` PEs.
    pub fn new(spec: TransportSpec, n_pes: usize) -> Result<TransportHandle, ShmemError> {
        match spec {
            TransportSpec::InProc => Ok(TransportHandle::InProc),
            TransportSpec::Ipc(cfg) => Ok(TransportHandle::Ipc(Arc::new(
                ipc::IpcTransport::for_threads(n_pes, cfg)?,
            ))),
        }
    }

    /// Which backend this handle dispatches to.
    #[inline]
    pub fn kind(&self) -> TransportKind {
        match self {
            TransportHandle::InProc => TransportKind::InProc,
            TransportHandle::Ipc(_) => TransportKind::Ipc,
        }
    }

    /// [`Transport::carry`] through the selected backend.
    #[inline]
    pub fn carry(
        &self,
        src: usize,
        dst: usize,
        class: TransferClass,
        payload: &[MaybeUninit<u8>],
    ) -> Result<(), ShmemError> {
        match self {
            TransportHandle::InProc => Ok(()),
            TransportHandle::Ipc(t) => t.carry(src, dst, class, payload),
        }
    }

    /// [`Transport::flush`] through the selected backend.
    #[inline]
    pub fn flush(&self, src: usize) -> Result<(), ShmemError> {
        match self {
            TransportHandle::InProc => Ok(()),
            TransportHandle::Ipc(t) => t.flush(src),
        }
    }

    /// [`Transport::rendezvous_note`] through the selected backend.
    #[inline]
    pub fn rendezvous_note(&self, pe: usize) {
        if let TransportHandle::Ipc(t) = self {
            t.rendezvous_note(pe);
        }
    }

    /// [`Transport::note_fault`] through the selected backend.
    #[inline]
    pub fn note_fault(&self, event: FaultEvent) {
        if let TransportHandle::Ipc(t) = self {
            t.note_fault(event);
        }
    }

    /// [`Transport::quiescent`] through the selected backend.
    pub fn quiescent(&self) -> bool {
        match self {
            TransportHandle::InProc => true,
            TransportHandle::Ipc(t) => t.quiescent(),
        }
    }

    /// [`Transport::stats`] through the selected backend.
    pub fn stats(&self) -> TransportStats {
        match self {
            TransportHandle::InProc => TransportStats::default(),
            TransportHandle::Ipc(t) => t.stats(),
        }
    }

    /// The backend as a trait object (conformance tests exercise the trait
    /// surface directly).
    pub fn as_dyn(&self) -> &dyn Transport {
        match self {
            TransportHandle::InProc => &INPROC,
            TransportHandle::Ipc(t) => t.as_ref(),
        }
    }
}

/// View any initialized slice as raw bytes for [`Transport::carry`].
///
/// Returns `MaybeUninit<u8>` rather than `u8` because `T`'s padding bytes
/// are allowed to be uninitialized; a `&[u8]` view over them would be UB.
#[inline]
pub fn payload_bytes<T>(slice: &[T]) -> &[MaybeUninit<u8>] {
    // SAFETY: any `&[T]` points at `size_of_val(slice)` bytes that are
    // valid to view as `MaybeUninit<u8>` (initialized or padding alike);
    // the lifetime is inherited from the borrow.
    unsafe {
        std::slice::from_raw_parts(
            slice.as_ptr() as *const MaybeUninit<u8>,
            std::mem::size_of_val(slice),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_to_inproc() {
        assert_eq!(TransportSpec::default(), TransportSpec::InProc);
        assert_eq!(TransportSpec::default().kind(), TransportKind::InProc);
        assert_eq!(TransportSpec::ipc().kind(), TransportKind::Ipc);
        assert_eq!(TransportKind::InProc.name(), "inproc");
        assert_eq!(TransportKind::Ipc.name(), "ipc");
    }

    #[test]
    fn inproc_hooks_are_noops() {
        let t = InProcTransport;
        let data = [1u32, 2, 3];
        t.carry(0, 1, TransferClass::RemotePut, payload_bytes(&data))
            .unwrap();
        t.flush(0).unwrap();
        t.rendezvous_note(0);
        t.note_fault(FaultEvent::Retry { pe: 0 });
        assert!(t.quiescent());
        assert_eq!(t.stats(), TransportStats::default());
    }

    #[test]
    fn payload_bytes_covers_slice() {
        let data = [0u64; 4];
        assert_eq!(payload_bytes(&data).len(), 32);
        let unit: [u8; 3] = [1, 2, 3];
        assert_eq!(payload_bytes(&unit).len(), 3);
    }

    #[test]
    fn handle_dispatches_inproc() {
        let h = TransportHandle::new(TransportSpec::InProc, 4).unwrap();
        assert_eq!(h.kind(), TransportKind::InProc);
        assert!(h.quiescent());
        assert_eq!(h.as_dyn().kind(), TransportKind::InProc);
    }
}
