//! Unix-domain-socket control plane for the Ipc transport.
//!
//! Rendezvous, rank assignment, and end-of-run collection for forked
//! worker processes. This is a *cold* path: it runs once per attempt,
//! before and after the supersteps, and is the one place the Ipc backend
//! is allowed to block and hold locks (see `lockfree_hotpath.rs`, which
//! pins the zero-lock-delta gates to `InProc` for exactly this reason).
//!
//! Wire format: fixed 24-byte records `{tag: u64, a: u64, b: u64}`,
//! little-endian. Tags:
//!
//! | tag | name   | a            | b         | direction           |
//! |-----|--------|--------------|-----------|---------------------|
//! | 1   | HELLO  | worker index | attempt   | worker → coordinator|
//! | 2   | ASSIGN | base rank    | n_workers | coordinator → worker|
//! | 3   | GO     | attempt      | 0         | coordinator → worker|
//! | 4   | DONE   | worker index | status    | worker → coordinator|

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::error::ShmemError;

/// HELLO record tag (worker announces itself).
pub const TAG_HELLO: u64 = 1;
/// ASSIGN record tag (coordinator assigns PE ranks).
pub const TAG_ASSIGN: u64 = 2;
/// GO record tag (coordinator releases the attempt).
pub const TAG_GO: u64 = 3;
/// DONE record tag (worker reports completion status).
pub const TAG_DONE: u64 = 4;

/// One 24-byte control record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Message kind (one of the `TAG_*` constants).
    pub tag: u64,
    /// First operand (meaning depends on `tag`).
    pub a: u64,
    /// Second operand (meaning depends on `tag`).
    pub b: u64,
}

impl Record {
    fn to_bytes(self) -> [u8; 24] {
        let mut buf = [0u8; 24];
        buf[0..8].copy_from_slice(&self.tag.to_le_bytes());
        buf[8..16].copy_from_slice(&self.a.to_le_bytes());
        buf[16..24].copy_from_slice(&self.b.to_le_bytes());
        buf
    }

    fn from_bytes(buf: &[u8; 24]) -> Record {
        let word = |i: usize| u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        Record {
            tag: word(0),
            a: word(1),
            b: word(2),
        }
    }
}

/// Write one record to `stream` (blocking; control plane is cold path).
pub fn send(stream: &mut UnixStream, rec: Record) -> Result<(), ShmemError> {
    stream
        .write_all(&rec.to_bytes())
        .map_err(|e| ShmemError::TransportSetup(format!("control send: {e}")))
}

/// Read one record from `stream`, honouring its configured read timeout.
pub fn recv(stream: &mut UnixStream) -> Result<Record, ShmemError> {
    let mut buf = [0u8; 24];
    stream
        .read_exact(&mut buf)
        .map_err(|e| ShmemError::TransportSetup(format!("control recv: {e}")))?;
    Ok(Record::from_bytes(&buf))
}

/// Coordinator side of the control plane: owns the listening socket and
/// the rendezvous/collection protocol.
pub struct ControlPlane {
    listener: UnixListener,
    path: PathBuf,
}

/// One connected, rank-assigned worker as seen by the coordinator.
#[derive(Debug)]
pub struct WorkerConn {
    /// Control stream to the worker.
    pub stream: UnixStream,
    /// Worker index the worker announced in HELLO.
    pub index: u64,
}

impl ControlPlane {
    /// Bind the coordinator socket at `path` (removing any stale socket
    /// file first — paths are per-run and live under the temp dir).
    pub fn bind(path: &Path) -> Result<ControlPlane, ShmemError> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)
            .map_err(|e| ShmemError::TransportSetup(format!("bind {}: {e}", path.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ShmemError::TransportSetup(format!("set_nonblocking: {e}")))?;
        Ok(ControlPlane {
            listener,
            path: path.to_path_buf(),
        })
    }

    /// Socket path this plane is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accept `workers` HELLOs within `timeout`, assign each worker its
    /// base PE rank (`index * pes_per_worker`), and release them all with
    /// GO. Returns the connected workers ordered by announced index.
    ///
    /// A worker that never shows up surfaces as
    /// [`ShmemError::TransportRendezvous`] — a typed error, not a hang.
    pub fn rendezvous(
        &self,
        workers: usize,
        pes_per_worker: usize,
        attempt: u64,
        timeout: Duration,
    ) -> Result<Vec<WorkerConn>, ShmemError> {
        let deadline = Instant::now() + timeout;
        let mut conns: Vec<Option<WorkerConn>> = (0..workers).map(|_| None).collect();
        let mut seen = 0usize;
        while seen < workers {
            if Instant::now() >= deadline {
                return Err(ShmemError::TransportRendezvous {
                    waited_ms: timeout.as_millis() as u64,
                    detail: format!("{seen}/{workers} workers joined before timeout"),
                });
            }
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .map_err(|e| ShmemError::TransportSetup(format!("read timeout: {e}")))?;
                    let hello = recv(&mut stream)?;
                    if hello.tag != TAG_HELLO || hello.a as usize >= workers {
                        return Err(ShmemError::TransportSetup(format!(
                            "unexpected rendezvous record {hello:?}"
                        )));
                    }
                    let index = hello.a;
                    send(
                        &mut stream,
                        Record {
                            tag: TAG_ASSIGN,
                            a: index * pes_per_worker as u64,
                            b: workers as u64,
                        },
                    )?;
                    conns[index as usize] = Some(WorkerConn { stream, index });
                    seen += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(ShmemError::TransportSetup(format!("accept: {e}")));
                }
            }
        }
        let mut out = Vec::with_capacity(workers);
        for conn in conns.into_iter().flatten() {
            out.push(conn);
        }
        for conn in &mut out {
            send(
                &mut conn.stream,
                Record {
                    tag: TAG_GO,
                    a: attempt,
                    b: 0,
                },
            )?;
        }
        Ok(out)
    }

    /// Collect DONE from `conn`, waiting at most `timeout`. `Ok(status)`
    /// is the worker-reported status word; an EOF or timeout means the
    /// worker died mid-superstep and is reported as a typed error by the
    /// caller (who knows which ranks the worker hosted).
    pub fn collect_done(conn: &mut WorkerConn, timeout: Duration) -> Result<u64, ShmemError> {
        conn.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ShmemError::TransportSetup(format!("read timeout: {e}")))?;
        let rec = recv(&mut conn.stream)?;
        if rec.tag != TAG_DONE {
            return Err(ShmemError::TransportSetup(format!(
                "expected DONE, got {rec:?}"
            )));
        }
        Ok(rec.b)
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A worker-side control session that keeps the stream for DONE.
pub struct WorkerSession {
    stream: UnixStream,
    /// PE rank of this worker's first hosted PE.
    pub base_rank: u64,
    /// Total forked workers in the run.
    pub n_workers: u64,
    /// Attempt number the coordinator released.
    pub attempt: u64,
}

impl WorkerSession {
    /// Connect, HELLO, and wait for ASSIGN + GO (the worker half of
    /// [`ControlPlane::rendezvous`]).
    pub fn join(
        path: &Path,
        index: u64,
        attempt: u64,
        timeout: Duration,
    ) -> Result<WorkerSession, ShmemError> {
        let deadline = Instant::now() + timeout;
        let mut stream = loop {
            match UnixStream::connect(path) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(ShmemError::TransportRendezvous {
                        waited_ms: timeout.as_millis() as u64,
                        detail: format!("worker {index} connect {}: {e}", path.display()),
                    });
                }
            }
        };
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ShmemError::TransportSetup(format!("read timeout: {e}")))?;
        send(
            &mut stream,
            Record {
                tag: TAG_HELLO,
                a: index,
                b: attempt,
            },
        )?;
        let assign = recv(&mut stream)?;
        if assign.tag != TAG_ASSIGN {
            return Err(ShmemError::TransportSetup(format!(
                "expected ASSIGN, got {assign:?}"
            )));
        }
        let go = recv(&mut stream)?;
        if go.tag != TAG_GO {
            return Err(ShmemError::TransportSetup(format!(
                "expected GO, got {go:?}"
            )));
        }
        Ok(WorkerSession {
            stream,
            base_rank: assign.a,
            n_workers: assign.b,
            attempt: go.a,
        })
    }

    /// Report completion with `status` (0 = success).
    pub fn done(mut self, index: u64, status: u64) -> Result<(), ShmemError> {
        send(
            &mut self.stream,
            Record {
                tag: TAG_DONE,
                a: index,
                b: status,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let rec = Record {
            tag: TAG_ASSIGN,
            a: 7,
            b: 42,
        };
        assert_eq!(Record::from_bytes(&rec.to_bytes()), rec);
    }

    #[test]
    fn rendezvous_assigns_ranks_and_collects_done() {
        let path = std::env::temp_dir().join(format!("fabsp-ctrl-test-{}", std::process::id()));
        let plane = ControlPlane::bind(&path).unwrap();
        let worker_path = path.clone();
        let handle = std::thread::spawn(move || {
            let session =
                WorkerSession::join(&worker_path, 1, 0, Duration::from_secs(5)).unwrap();
            assert_eq!(session.base_rank, 2);
            assert_eq!(session.n_workers, 2);
            assert_eq!(session.attempt, 0);
            session.done(1, 0).unwrap();
        });
        let worker_path = path.clone();
        let handle0 = std::thread::spawn(move || {
            let session =
                WorkerSession::join(&worker_path, 0, 0, Duration::from_secs(5)).unwrap();
            assert_eq!(session.base_rank, 0);
            session.done(0, 0).unwrap();
        });
        let mut conns = plane.rendezvous(2, 2, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].index, 0);
        assert_eq!(conns[1].index, 1);
        for conn in &mut conns {
            assert_eq!(
                ControlPlane::collect_done(conn, Duration::from_secs(5)).unwrap(),
                0
            );
        }
        handle.join().unwrap();
        handle0.join().unwrap();
    }

    #[test]
    fn rendezvous_timeout_is_typed() {
        let path = std::env::temp_dir().join(format!("fabsp-ctrl-timeout-{}", std::process::id()));
        let plane = ControlPlane::bind(&path).unwrap();
        let err = plane
            .rendezvous(1, 1, 0, Duration::from_millis(50))
            .unwrap_err();
        match err {
            ShmemError::TransportRendezvous { waited_ms, detail } => {
                assert_eq!(waited_ms, 50);
                assert!(detail.contains("0/1"));
            }
            other => panic!("expected TransportRendezvous, got {other:?}"),
        }
    }
}
