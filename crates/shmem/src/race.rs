//! Vector-clock happens-before race detector (the `race-detect` feature).
//!
//! The substrate's hot path is lock-free by contract; the static lint
//! (`fabsp-analyzer`) pins every memory ordering to a policy table, and this
//! module checks the *dynamic* half of the argument: every pair of
//! conflicting accesses to tracked shared memory (symmetric-heap elements,
//! ring cell buffers) must be ordered by a happens-before edge the substrate
//! actually models. A [`Detector`] hangs off the SPMD world; instrumented
//! operations feed it:
//!
//! - **Accesses** — [`SymmetricVec`](crate::SymmetricVec) element
//!   reads/writes and [`SpscRing`](crate::SpscRing) cell-buffer fills/reads,
//!   at element/cell granularity.
//! - **Sync edges** — ring state-word publish/release (`Release` stores)
//!   paired with `state()` polls (`Acquire` loads), every
//!   [`SymmetricAtomicVec`](crate::SymmetricAtomicVec) operation, barrier
//!   arrive/depart, collective rendezvous arrive/depart, and explicit
//!   [`HbObject`] edges (the conveyor termination ledger).
//! - **The nbi protocol** — a ring `write_nbi` marks its cell *pending*;
//!   the initiator's `quiet` clears the mark (and only then emits the write
//!   event). A consumer that reads a still-pending cell has consumed
//!   non-blocking-put data before the initiator's `quiet` — a protocol
//!   violation even if the bytes happen to be there. Symmetric-heap
//!   `put_nbi` needs no pending mark: the heap defers the *data itself*
//!   until `quiet`, so a pre-quiet read legitimately observes old values
//!   (that is the litmus-tested OpenSHMEM semantics), and the write event
//!   fires inside the deferred apply closure.
//!
//! The clock algebra is FastTrack-flavoured: one vector clock per PE, and
//! per tracked location a last-write epoch plus one read epoch per reading
//! PE. A conflicting pair whose earlier epoch is not `<=` the later access's
//! clock is a race: the detector panics with both access labels, both
//! captured backtraces, and the schedule (seed) that produced the
//! interleaving, which poisons the world and surfaces as
//! [`ShmemError::PePanicked`](crate::ShmemError::PePanicked).
//!
//! Physical atomic operations run *inside* the detector's mutex (the
//! `sync_*` methods take the operation as a closure), so a load observes a
//! sync object's accumulated clock exactly when it observes the matching
//! store — free-running threads cannot skew bookkeeping against reality.
//!
//! The detector deliberately uses `std::sync::Mutex`, which the vendored
//! `parking_lot` acquisition counter does not count: enabling `race-detect`
//! does not trip the hot path's zero-lock-delta assertions.
//!
//! [`RaceHooks`] hosts the negative litmus switches — three seeded
//! weakenings (downgrade the ring `Acquire` poll to `Relaxed`, drop the
//! quiet-epoch delivery edge, skip the barrier epoch) that tests use to
//! prove the detector actually flags each missing edge.

use std::backtrace::Backtrace;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

static ALLOC_IDS: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique id for a tracked allocation (called from the
/// collective combine closures that create symmetric objects). Id 0 is
/// reserved for the detector's built-in barrier/collective sync objects.
pub fn next_alloc_id() -> u64 {
    ALLOC_IDS.fetch_add(1, Ordering::Relaxed)
}

/// One tracked location or sync object: element `index` of `owner`'s region
/// of allocation `alloc`. Data locations and sync objects live in separate
/// tables, so a ring cell's buffer and its state word share a `Loc`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Loc {
    /// Allocation id from [`next_alloc_id`].
    pub alloc: u64,
    /// PE whose region the location belongs to.
    pub owner: usize,
    /// Element (heap) or cell (ring) index within the region.
    pub index: usize,
}

/// A named happens-before token for synchronization the substrate performs
/// outside the instrumented primitives (e.g. the conveyor termination
/// ledger's `SeqCst` atomics). Edges are drawn with [`Pe::hb_release`],
/// [`Pe::hb_acquire`] and [`Pe::hb_rmw`].
///
/// [`Pe::hb_release`]: crate::Pe::hb_release
/// [`Pe::hb_acquire`]: crate::Pe::hb_acquire
/// [`Pe::hb_rmw`]: crate::Pe::hb_rmw
#[derive(Debug)]
pub struct HbObject {
    id: u64,
}

impl HbObject {
    /// A fresh sync object with a process-unique id.
    pub fn new() -> HbObject {
        HbObject { id: next_alloc_id() }
    }

    pub(crate) fn loc(&self) -> Loc {
        Loc {
            alloc: self.id,
            owner: 0,
            index: 0,
        }
    }
}

impl Default for HbObject {
    fn default() -> Self {
        HbObject::new()
    }
}

/// Negative-litmus switches: each deliberately weakens one modeled edge so
/// tests can prove the detector flags exactly that weakening. All default
/// to off; production semantics are unchanged either way (the hooks only
/// alter detector bookkeeping, plus one physically-equivalent `Relaxed`
/// poll on x86).
#[derive(Clone, Copy, Default, Debug)]
pub struct RaceHooks {
    /// Downgrade the ring `state()` poll from `Acquire` to `Relaxed` and
    /// record no acquire edge: the publish/consume pairing disappears and
    /// every cell handoff becomes a flagged race.
    pub downgrade_ring_acquire: bool,
    /// Drop the quiet-epoch delivery edge: the initiator's `quiet` no
    /// longer clears ring nbi pending marks (nor emits the write event), so
    /// the first consumption of an nbi delivery is flagged.
    pub skip_quiet_edge: bool,
    /// Skip the barrier arrive/depart epoch: `barrier_all` stops ordering
    /// accesses on opposite sides, so barrier-synchronized code is flagged.
    pub skip_barrier_edge: bool,
}

/// A vector clock: one logical-time component per PE.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Vc(Vec<u64>);

impl Vc {
    fn new(n_pes: usize) -> Vc {
        Vc(vec![0; n_pes])
    }

    fn join(&mut self, other: &Vc) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
}

/// What an access did, for conflict checking and reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AccessKind {
    Read,
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One recorded access epoch: `(rank, time)` plus reporting context.
struct Access {
    rank: usize,
    time: u64,
    label: &'static str,
    note: Option<&'static str>,
    bt: Arc<Backtrace>,
}

#[derive(Default)]
struct LocState {
    write: Option<Access>,
    /// At most one (the latest) read epoch per reading rank.
    reads: Vec<Access>,
}

struct PendingNbi {
    issuer: usize,
    label: &'static str,
    bt: Arc<Backtrace>,
}

struct State {
    clocks: Vec<Vc>,
    locs: HashMap<Loc, LocState>,
    syncs: HashMap<Loc, Vc>,
    nbi_pending: HashMap<Loc, PendingNbi>,
    /// Most recent logical-operation note per rank (e.g. "Conveyor::push"),
    /// attached to subsequent accesses for friendlier reports.
    notes: Vec<Option<&'static str>>,
    events: u64,
}

/// Reserved sync objects (alloc id 0 never collides with allocations).
const BARRIER_LOC: Loc = Loc { alloc: 0, owner: 0, index: 0 };
const COLLECTIVE_LOC: Loc = Loc { alloc: 0, owner: 0, index: 1 };

/// The happens-before checker attached to one SPMD world; see the module
/// docs. All methods are callable from any PE thread.
pub struct Detector {
    state: Mutex<State>,
    /// Human-readable schedule identity ("RandomWalk seed 42", ...),
    /// included in every violation report so the interleaving replays.
    schedule: String,
    hooks: RaceHooks,
}

impl Detector {
    /// A detector for `n_pes` PEs under the named schedule.
    pub fn new(n_pes: usize, schedule: String, hooks: RaceHooks) -> Detector {
        Detector {
            state: Mutex::new(State {
                // Each PE's own component starts at 1, not 0: an epoch
                // stamped before any release still reads `time >= 1`, which
                // another PE's untouched clock entry (0) does not cover —
                // otherwise first-epoch accesses could never conflict.
                clocks: (0..n_pes)
                    .map(|r| {
                        let mut vc = Vc::new(n_pes);
                        vc.0[r] = 1;
                        vc
                    })
                    .collect(),
                locs: HashMap::new(),
                syncs: HashMap::new(),
                nbi_pending: HashMap::new(),
                notes: vec![None; n_pes],
                events: 0,
            }),
            schedule,
            hooks,
        }
    }

    /// The installed litmus hooks.
    #[inline]
    pub fn hooks(&self) -> RaceHooks {
        self.hooks
    }

    /// Total events processed (accesses + sync edges), for overhead
    /// reporting.
    pub fn events(&self) -> u64 {
        self.lock().events
    }

    /// After a violation panic the mutex is poisoned; every later caller is
    /// collateral of an already-reported race, so recover the guard and let
    /// the world-poison check unwind them.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // --- sync edges -------------------------------------------------------

    /// Acquire edge on `loc` around the physical operation `op` (typically
    /// the matching `Acquire` load). Running `op` under the detector lock
    /// keeps the clock join atomic with the observation it models.
    pub fn sync_acquire<R>(&self, rank: usize, loc: Loc, op: impl FnOnce() -> R) -> R {
        let mut st = self.lock();
        st.events += 1;
        let out = op();
        Self::acquire_in(&mut st, rank, loc);
        out
    }

    /// Release edge on `loc` around the physical operation `op` (typically
    /// the matching `Release` store).
    pub fn sync_release<R>(&self, rank: usize, loc: Loc, op: impl FnOnce() -> R) -> R {
        let mut st = self.lock();
        st.events += 1;
        Self::release_in(&mut st, rank, loc);
        op()
    }

    /// Acquire-release edge on `loc` around `op` (an RMW such as
    /// `fetch_add`).
    pub fn sync_rmw<R>(&self, rank: usize, loc: Loc, op: impl FnOnce() -> R) -> R {
        let mut st = self.lock();
        st.events += 1;
        Self::acquire_in(&mut st, rank, loc);
        Self::release_in(&mut st, rank, loc);
        op()
    }

    fn acquire_in(st: &mut State, rank: usize, loc: Loc) {
        let State { clocks, syncs, .. } = st;
        if let Some(s) = syncs.get(&loc) {
            clocks[rank].join(s);
        }
    }

    fn release_in(st: &mut State, rank: usize, loc: Loc) {
        let State { clocks, syncs, .. } = st;
        let clock = &mut clocks[rank];
        syncs
            .entry(loc)
            .or_insert_with(|| Vc::new(clock.0.len()))
            .join(clock);
        // Bump our component so later same-rank accesses are not mistaken
        // for pre-release ones by PEs that acquired this edge.
        clock.0[rank] += 1;
    }

    // --- barrier / collective epochs --------------------------------------

    /// Entering `barrier_all`: publish this PE's clock (before the physical
    /// wait, so every departer observes every arriver).
    pub fn barrier_arrive(&self, rank: usize) {
        if self.hooks.skip_barrier_edge {
            return; // LITMUS HOOK: the barrier stops ordering anything.
        }
        let mut st = self.lock();
        st.events += 1;
        Self::release_in(&mut st, rank, BARRIER_LOC);
    }

    /// Leaving `barrier_all`: join every arriver's clock.
    pub fn barrier_depart(&self, rank: usize) {
        if self.hooks.skip_barrier_edge {
            return;
        }
        let mut st = self.lock();
        st.events += 1;
        Self::acquire_in(&mut st, rank, BARRIER_LOC);
    }

    /// Entering a collective rendezvous (allocation, reduction, ...).
    pub fn collective_arrive(&self, rank: usize) {
        let mut st = self.lock();
        st.events += 1;
        Self::release_in(&mut st, rank, COLLECTIVE_LOC);
    }

    /// Leaving a collective rendezvous.
    pub fn collective_depart(&self, rank: usize) {
        let mut st = self.lock();
        st.events += 1;
        Self::acquire_in(&mut st, rank, COLLECTIVE_LOC);
    }

    // --- data accesses ----------------------------------------------------

    /// Record a read of `loc` and check it against the last write.
    pub fn read(&self, rank: usize, loc: Loc, label: &'static str) {
        self.access(rank, loc, AccessKind::Read, label);
    }

    /// Record a write of `loc` and check it against all prior epochs.
    pub fn write(&self, rank: usize, loc: Loc, label: &'static str) {
        self.access(rank, loc, AccessKind::Write, label);
    }

    /// Record reads of `len` consecutive elements of `owner`'s region.
    pub fn read_range(
        &self,
        rank: usize,
        alloc: u64,
        owner: usize,
        start: usize,
        len: usize,
        label: &'static str,
    ) {
        self.access_range(rank, alloc, owner, start..start + len, AccessKind::Read, label);
    }

    /// Record writes of `len` consecutive elements of `owner`'s region.
    pub fn write_range(
        &self,
        rank: usize,
        alloc: u64,
        owner: usize,
        start: usize,
        len: usize,
        label: &'static str,
    ) {
        self.access_range(rank, alloc, owner, start..start + len, AccessKind::Write, label);
    }

    fn access_range(
        &self,
        rank: usize,
        alloc: u64,
        owner: usize,
        indices: std::ops::Range<usize>,
        kind: AccessKind,
        label: &'static str,
    ) {
        let mut st = self.lock();
        let bt = Arc::new(Backtrace::capture());
        for index in indices {
            let loc = Loc { alloc, owner, index };
            self.access_in(&mut st, rank, loc, kind, label, &bt);
        }
    }

    fn access(&self, rank: usize, loc: Loc, kind: AccessKind, label: &'static str) {
        let mut st = self.lock();
        let bt = Arc::new(Backtrace::capture());
        self.access_in(&mut st, rank, loc, kind, label, &bt);
    }

    fn access_in(
        &self,
        st: &mut State,
        rank: usize,
        loc: Loc,
        kind: AccessKind,
        label: &'static str,
        bt: &Arc<Backtrace>,
    ) {
        st.events += 1;
        let note = st.notes[rank];
        if let Some(p) = st.nbi_pending.get(&loc) {
            if p.issuer != rank {
                self.report_pending_nbi(rank, loc, label, note, p, bt);
            }
        }
        let time = st.clocks[rank].0[rank];
        // An earlier epoch (r, t) happens-before this access iff t <= our
        // clock's r component; same-rank epochs are ordered trivially.
        if let Some(entry) = st.locs.get(&loc) {
            let clock = &st.clocks[rank];
            if let Some(w) = entry
                .write
                .as_ref()
                .filter(|w| w.rank != rank && w.time > clock.0[w.rank])
            {
                self.report_conflict(rank, loc, kind, label, note, bt, AccessKind::Write, w);
            }
            if kind == AccessKind::Write {
                if let Some(r) = entry
                    .reads
                    .iter()
                    .find(|r| r.rank != rank && r.time > clock.0[r.rank])
                {
                    self.report_conflict(rank, loc, kind, label, note, bt, AccessKind::Read, r);
                }
            }
        }
        let access = Access {
            rank,
            time,
            label,
            note,
            bt: Arc::clone(bt),
        };
        let entry = st.locs.entry(loc).or_default();
        match kind {
            AccessKind::Write => {
                // Every prior epoch was just proven ordered before us, so
                // the write epoch now dominates the location's history.
                entry.write = Some(access);
                entry.reads.clear();
            }
            AccessKind::Read => {
                entry.reads.retain(|r| r.rank != rank);
                entry.reads.push(access);
            }
        }
    }

    // --- the non-blocking-put pending protocol ----------------------------

    /// A ring `write_nbi` staged data into `loc`; consumption before the
    /// issuer's `quiet` is a protocol violation.
    pub fn nbi_staged(&self, rank: usize, loc: Loc, label: &'static str) {
        let mut st = self.lock();
        st.events += 1;
        st.nbi_pending.insert(
            loc,
            PendingNbi {
                issuer: rank,
                label,
                bt: Arc::new(Backtrace::capture()),
            },
        );
    }

    /// The issuer's `quiet` completed the staged put: clear the pending
    /// mark and emit the deferred write event.
    pub fn nbi_delivered(&self, rank: usize, loc: Loc, label: &'static str) {
        if self.hooks.skip_quiet_edge {
            return; // LITMUS HOOK: quiet no longer delivers anything.
        }
        {
            let mut st = self.lock();
            st.events += 1;
            st.nbi_pending.remove(&loc);
        }
        self.write(rank, loc, label);
    }

    // --- reporting --------------------------------------------------------

    /// Tag subsequent accesses by `rank` with a logical-operation note.
    pub fn note(&self, rank: usize, note: &'static str) {
        let mut st = self.lock();
        st.notes[rank] = Some(note);
    }

    #[allow(clippy::too_many_arguments)]
    fn report_conflict(
        &self,
        rank: usize,
        loc: Loc,
        kind: AccessKind,
        label: &'static str,
        note: Option<&'static str>,
        bt: &Arc<Backtrace>,
        prev_kind: AccessKind,
        prev: &Access,
    ) -> ! {
        let mut msg = format!(
            "race detected (schedule: {}): {} {} by PE {} is unordered with {} {} by PE {} \
             at alloc#{}[pe {}][{}]",
            self.schedule,
            kind,
            describe(label, note),
            rank,
            prev_kind,
            describe(prev.label, prev.note),
            prev.rank,
            loc.alloc,
            loc.owner,
            loc.index,
        );
        let _ = write!(
            msg,
            "\n  PE {rank} stack:\n{bt}\n  PE {} stack:\n{}\
             \n  (set RUST_BACKTRACE=1 for full stacks; the schedule above replays the interleaving)",
            prev.rank, prev.bt,
        );
        panic!("{msg}");
    }

    fn report_pending_nbi(
        &self,
        rank: usize,
        loc: Loc,
        label: &'static str,
        note: Option<&'static str>,
        pending: &PendingNbi,
        bt: &Arc<Backtrace>,
    ) -> ! {
        let mut msg = format!(
            "race detected (schedule: {}): {} by PE {} consumed a non-blocking put staged by \
             PE {} ({}) before the initiator's quiet at alloc#{}[pe {}][{}]",
            self.schedule,
            describe(label, note),
            rank,
            pending.issuer,
            pending.label,
            loc.alloc,
            loc.owner,
            loc.index,
        );
        let _ = write!(
            msg,
            "\n  PE {rank} stack:\n{bt}\n  PE {} stack (at staging):\n{}\
             \n  (set RUST_BACKTRACE=1 for full stacks; the schedule above replays the interleaving)",
            pending.issuer, pending.bt,
        );
        panic!("{msg}");
    }
}

fn describe(label: &'static str, note: Option<&'static str>) -> String {
    match note {
        Some(note) => format!("{label} (during {note})"),
        None => label.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(n: usize) -> Detector {
        Detector::new(n, "unit test".to_string(), RaceHooks::default())
    }

    const L: Loc = Loc { alloc: 7, owner: 1, index: 3 };
    const S: Loc = Loc { alloc: 8, owner: 0, index: 0 };

    #[test]
    fn release_acquire_orders_write_before_read() {
        let d = det(2);
        d.write(0, L, "writer");
        d.sync_release(0, S, || ());
        d.sync_acquire(1, S, || ());
        d.read(1, L, "reader"); // ordered: must not panic
    }

    #[test]
    fn unordered_write_read_is_reported() {
        let d = det(2);
        d.write(0, L, "writer");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.read(1, L, "reader");
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("race detected"), "{msg}");
        assert!(msg.contains("writer") && msg.contains("reader"), "{msg}");
        assert!(msg.contains("unit test"), "schedule missing: {msg}");
    }

    #[test]
    fn unordered_write_write_is_reported() {
        let d = det(2);
        d.write(0, L, "first");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.write(1, L, "second");
        }))
        .unwrap_err();
        assert!(err.downcast_ref::<String>().unwrap().contains("race detected"));
    }

    #[test]
    fn reads_do_not_conflict_with_reads() {
        let d = det(3);
        d.read(0, L, "r0");
        d.read(1, L, "r1");
        d.read(2, L, "r2");
    }

    #[test]
    fn release_bump_separates_pre_and_post_epochs() {
        let d = det(2);
        d.sync_release(0, S, || ());
        d.sync_acquire(1, S, || ());
        // PE 0 writes *after* its release: PE 1's acquired clock does not
        // cover it, so a subsequent PE 1 read must be flagged.
        d.write(0, L, "late writer");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.read(1, L, "early reader");
        }))
        .unwrap_err();
        assert!(err.downcast_ref::<String>().unwrap().contains("race detected"));
    }

    #[test]
    fn barrier_epoch_orders_all_pes() {
        let d = det(3);
        d.write(0, L, "before barrier");
        for r in 0..3 {
            d.barrier_arrive(r);
        }
        for r in 0..3 {
            d.barrier_depart(r);
        }
        d.write(2, L, "after barrier");
    }

    #[test]
    fn skip_barrier_hook_drops_the_edge() {
        let d = Detector::new(
            2,
            "unit test".to_string(),
            RaceHooks { skip_barrier_edge: true, ..Default::default() },
        );
        d.write(0, L, "before barrier");
        for r in 0..2 {
            d.barrier_arrive(r);
            d.barrier_depart(r);
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.read(1, L, "after barrier");
        }))
        .unwrap_err();
        assert!(err.downcast_ref::<String>().unwrap().contains("race detected"));
    }

    #[test]
    fn pending_nbi_consumption_is_reported() {
        let d = det(2);
        d.nbi_staged(0, L, "write_nbi");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.read(1, L, "read_local");
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("before the initiator's quiet"), "{msg}");
    }

    #[test]
    fn delivered_nbi_with_edge_is_clean() {
        let d = det(2);
        d.nbi_staged(0, L, "write_nbi");
        d.nbi_delivered(0, L, "write_nbi");
        d.sync_release(0, S, || ()); // publish
        d.sync_acquire(1, S, || ()); // state poll
        d.read(1, L, "read_local");
    }

    #[test]
    fn skip_quiet_hook_leaves_the_mark() {
        let d = Detector::new(
            2,
            "unit test".to_string(),
            RaceHooks { skip_quiet_edge: true, ..Default::default() },
        );
        d.nbi_staged(0, L, "write_nbi");
        d.nbi_delivered(0, L, "write_nbi"); // suppressed by the hook
        d.sync_release(0, S, || ());
        d.sync_acquire(1, S, || ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.read(1, L, "read_local");
        }))
        .unwrap_err();
        assert!(err
            .downcast_ref::<String>()
            .unwrap()
            .contains("before the initiator's quiet"));
    }

    #[test]
    fn alloc_ids_are_unique_and_nonzero() {
        let a = next_alloc_id();
        let b = next_alloc_id();
        assert!(a != 0 && b != 0 && a != b);
    }

    #[test]
    fn events_are_counted() {
        let d = det(2);
        d.write(0, L, "w");
        d.sync_release(0, S, || ());
        assert_eq!(d.events(), 2);
    }
}
