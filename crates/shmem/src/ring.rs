//! Lock-free single-producer/single-consumer link cells.
//!
//! A [`SpscRing`] gives every PE a fixed set of *cells*; each cell is one
//! landing slot of a directed communication link: a data buffer of
//! `capacity` items plus one atomic *state word*. The state word doubles as
//! ready signal and free-list entry:
//!
//! - `0` — the cell is **free**: owned by its (single) remote producer,
//!   which may fill the buffer and publish.
//! - non-zero — the cell is **published**: owned by the consumer (the PE
//!   the cell lives on) until it calls [`release`](SpscRing::release),
//!   which hands the cell back to the producer. The word's payload
//!   (sequence numbers, item counts, ...) is the caller's business.
//!
//! Publication is a `Release` store matched by `Acquire` loads, so the
//! buffer contents written before [`publish`](SpscRing::publish) are
//! visible to a consumer that observed the word — and the `Release` store
//! of 0 in `release` conversely hands the (now consumed) buffer back to a
//! producer that observes the cell free. No mutex anywhere: this is the
//! conveyor hot path, and it replaces the mutex-guarded symmetric-heap
//! landing zones plus the separate ack counters of the original design.
//!
//! ## Accounting
//!
//! The cost-model and network-ledger charges mirror the symmetric-heap
//! operations each call models (so swapping the transport does not change
//! what the profiler observes):
//!
//! - [`write`](SpscRing::write) ≙ [`SymmetricVec::put`]: the `shmem_ptr` +
//!   memcpy (same node) or blocking put (cross node).
//! - [`write_nbi`](SpscRing::write_nbi) ≙ [`SymmetricVec::put_nbi`]: a
//!   `shmem_putmem_nbi` — it registers with the PE's pending-put queue so
//!   [`Pe::quiet`]/[`Pe::pending_nbi`] behave identically, but (unlike the
//!   mutex path) captures no data and allocates nothing: the bytes land in
//!   the cell immediately and simply stay unpublished until after `quiet`.
//! - [`publish`](SpscRing::publish) / [`release`](SpscRing::release) ≙ the
//!   signalling atomic puts ([`crate::SymmetricAtomicVec::store`] /
//!   `fetch_add`).
//!
//! ## Protocol obligations (checked by debug assertions)
//!
//! The type is safe to *use* but the single-producer/single-consumer
//! discipline is structural: exactly one PE may produce into a given cell
//! (in the conveyor, topology construction guarantees it — each cell
//! belongs to one directed link), writes may only target **free** cells,
//! and reads may only touch **published** cells. Violations are caught by
//! `debug_assert!`s on the state word.
//!
//! [`SymmetricVec::put`]: crate::SymmetricVec::put
//! [`SymmetricVec::put_nbi`]: crate::SymmetricVec::put_nbi

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabsp_hwpc::cost::model;

use crate::error::ShmemError;
use crate::grid::Grid;
use crate::net::TransferClass;
use crate::pe::Pe;
use crate::sched::SchedPoint;

/// One landing cell, padded to 128 bytes so adjacent cells' state words
/// never share a cache line (nor the adjacent line the spatial prefetcher
/// pairs with it). The cells of a PE sit contiguously in `regions`, and
/// each state word is spun on by a *different* remote producer while the
/// owner releases — without the padding, every publish/release would
/// false-share with its neighbors' polls.
#[repr(align(128))]
struct RingCell<T> {
    state: AtomicU64,
    data: UnsafeCell<Box<[T]>>,
}

struct RingInner<T> {
    grid: Grid,
    cells_per_pe: usize,
    capacity: usize,
    /// `regions[pe][cell]`.
    regions: Vec<Box<[RingCell<T>]>>,
    /// Allocation identity for the race detector's location map.
    #[cfg(feature = "race-detect")]
    race_id: u64,
}

// SAFETY: cross-thread access to the UnsafeCell'd buffers follows the SPSC
// protocol documented above — a producer writes only while it owns the cell
// (state == 0, single producer per cell), a consumer reads only while the
// cell is published, and ownership transfers through Release/Acquire on the
// state word. `T: Send` is required because values move between threads.
unsafe impl<T: Send> Sync for RingInner<T> {}
// SAFETY: RingInner owns its buffers; moving the allocation to another
// thread moves the `T`s with it, which `T: Send` permits. No thread
// affinity exists anywhere in the structure (the per-PE discipline lives in
// `Pe`, not here).
unsafe impl<T: Send> Send for RingInner<T> {}

/// Symmetric lock-free SPSC link cells; see the module docs.
///
/// Clone is shallow (all clones refer to the same allocation).
pub struct SpscRing<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> Clone for SpscRing<T> {
    fn clone(&self) -> Self {
        SpscRing {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + Default + Send + 'static> SpscRing<T> {
    /// Collectively allocate `cells` cells of `capacity` items on every PE.
    /// All PEs must call with the same shape (checked).
    pub fn new(pe: &Pe, cells: usize, capacity: usize) -> Result<SpscRing<T>, ShmemError> {
        let grid = pe.grid();
        let arc = pe.run_collective(
            (cells, capacity),
            move |shapes| -> Result<SpscRing<T>, ShmemError> {
                if shapes.iter().any(|&s| s != shapes[0]) {
                    return Err(ShmemError::CollectiveMismatch(format!(
                        "SpscRing shapes differ across PEs: {shapes:?}"
                    )));
                }
                let regions = (0..grid.n_pes())
                    .map(|_| {
                        (0..cells)
                            .map(|_| RingCell {
                                state: AtomicU64::new(0),
                                data: UnsafeCell::new(
                                    vec![T::default(); capacity].into_boxed_slice(),
                                ),
                            })
                            .collect()
                    })
                    .collect();
                Ok(SpscRing {
                    inner: Arc::new(RingInner {
                        grid,
                        cells_per_pe: cells,
                        capacity,
                        regions,
                        #[cfg(feature = "race-detect")]
                        race_id: crate::race::next_alloc_id(),
                    }),
                })
            },
        );
        (*arc).clone()
    }

    /// Cells per PE.
    #[inline]
    pub fn cells_per_pe(&self) -> usize {
        self.inner.cells_per_pe
    }

    /// Items per cell buffer.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    fn check(&self, pe: usize, cell: usize, len: usize) -> Result<(), ShmemError> {
        self.inner.grid.check_pe(pe)?;
        if cell >= self.inner.cells_per_pe || len > self.inner.capacity {
            return Err(ShmemError::OutOfBounds {
                offset: cell,
                len,
                region_len: self.inner.capacity,
            });
        }
        Ok(())
    }

    /// The detector's name for `owner_pe`'s cell (state word and buffer
    /// share it: the two live in separate sync/data maps).
    #[cfg(feature = "race-detect")]
    fn loc(&self, owner_pe: usize, cell: usize) -> crate::race::Loc {
        crate::race::Loc {
            alloc: self.inner.race_id,
            owner: owner_pe,
            index: cell,
        }
    }

    /// Poll `owner_pe`'s cell state word (`Acquire`; unaccounted — this
    /// models spinning on an in-memory delivery flag). Producers poll for
    /// `0` (free), consumers for non-zero (published).
    #[inline]
    #[cfg_attr(not(feature = "race-detect"), allow(unused_variables))]
    pub fn state(&self, pe: &Pe, owner_pe: usize, cell: usize) -> u64 {
        debug_assert!(owner_pe < self.inner.grid.n_pes());
        debug_assert!(cell < self.inner.cells_per_pe);
        let c = &self.inner.regions[owner_pe][cell];
        #[cfg(feature = "race-detect")]
        if let Some(d) = pe.race_detector() {
            if d.hooks().downgrade_ring_acquire {
                // LITMUS HOOK: a Relaxed poll observes the word without the
                // publication edge — the detector must flag the consumer's
                // subsequent buffer read as unordered with the producer's
                // fill.
                return c.state.load(Ordering::Relaxed);
            }
            return d.sync_acquire(pe.rank(), self.loc(owner_pe, cell), || {
                c.state.load(Ordering::Acquire)
            });
        }
        c.state.load(Ordering::Acquire)
    }

    /// Copy `src` into `dst_pe`'s cell buffer as a *blocking* put: the data
    /// is in place on return (visible once the caller publishes). The cell
    /// must be free and owned by this producer.
    pub fn write(&self, pe: &Pe, dst_pe: usize, cell: usize, src: &[T]) -> Result<(), ShmemError> {
        self.check(dst_pe, cell, src.len())?;
        pe.sched_point(SchedPoint::Put);
        let bytes = std::mem::size_of_val(src);
        self.fill(dst_pe, cell, src);
        #[cfg(feature = "race-detect")]
        if let Some(d) = pe.race_detector() {
            d.write(pe.rank(), self.loc(dst_pe, cell), "SpscRing::write");
        }
        if pe.same_node_as(dst_pe) {
            model::MEMCPY_PER_BYTE.times(bytes as u64).charge();
            pe.record_net(TransferClass::LocalCopy, bytes);
        } else {
            pe.carry(dst_pe, TransferClass::RemotePut, crate::transport::payload_bytes(src))?;
            model::PUTMEM_NBI.charge();
            model::MEMCPY_PER_BYTE.times(bytes as u64).charge();
            pe.record_net(TransferClass::RemotePut, bytes);
        }
        Ok(())
    }

    /// Copy `src` into `dst_pe`'s cell buffer as a non-blocking put
    /// (`shmem_putmem_nbi`): the caller must not publish the cell until
    /// after its next [`Pe::quiet`]. Registers with the pending-put queue
    /// (so `pending_nbi`/`quiet` byte accounting are exact) but captures no
    /// data — the double-buffered source is stable until the slot recycles,
    /// so, unlike the symmetric-heap path, no per-flush allocation happens.
    pub fn write_nbi(
        &self,
        pe: &Pe,
        dst_pe: usize,
        cell: usize,
        src: &[T],
    ) -> Result<(), ShmemError> {
        self.check(dst_pe, cell, src.len())?;
        pe.sched_point(SchedPoint::PutNbi);
        let bytes = std::mem::size_of_val(src);
        if !pe.same_node_as(dst_pe) {
            // Carry at staging time (the wire's DMA read of the stable
            // double-buffered source) so the pending closure stays
            // zero-alloc and quiet gains no new work.
            pe.carry(dst_pe, TransferClass::NonBlockingPut, crate::transport::payload_bytes(src))?;
        }
        self.fill(dst_pe, cell, src);
        #[cfg(feature = "race-detect")]
        if let Some(d) = pe.race_detector() {
            // The buffer is physically filled now, but semantically the put
            // is in flight until quiet: mark the cell nbi-pending and defer
            // the write event to the quiet-time flush below.
            let loc = self.loc(dst_pe, cell);
            let rank = pe.rank();
            d.nbi_staged(rank, loc, "SpscRing::write_nbi");
            let d = Arc::clone(d);
            pe.push_pending(
                bytes,
                Box::new(move || d.nbi_delivered(rank, loc, "SpscRing::write_nbi (quiet)")),
            );
        } else {
            pe.push_pending(bytes, Box::new(|| {}));
        }
        #[cfg(not(feature = "race-detect"))]
        // Zero-sized closure: Box::new performs no allocation.
        pe.push_pending(bytes, Box::new(|| {}));
        model::PUTMEM_NBI.charge();
        pe.record_net(TransferClass::NonBlockingPut, bytes);
        Ok(())
    }

    fn fill(&self, dst_pe: usize, cell: usize, src: &[T]) {
        let c = &self.inner.regions[dst_pe][cell];
        debug_assert_eq!(
            c.state.load(Ordering::Acquire),
            0,
            "SPSC protocol violation: write into a published cell"
        );
        // SAFETY: the cell is free (state == 0) and this PE is its single
        // producer, so no other thread reads or writes the buffer until we
        // publish (see RingInner's Sync justification).
        let dst = unsafe { &mut *c.data.get() };
        dst[..src.len()].copy_from_slice(src);
    }

    /// Publish `dst_pe`'s cell with a non-zero state `word` (`Release`) —
    /// the signalling atomic put that makes a prior [`write`](Self::write)
    /// or quiesced [`write_nbi`](Self::write_nbi) consumable.
    pub fn publish(
        &self,
        pe: &Pe,
        dst_pe: usize,
        cell: usize,
        word: u64,
    ) -> Result<(), ShmemError> {
        self.check(dst_pe, cell, 0)?;
        debug_assert_ne!(word, 0, "0 is the free-cell sentinel");
        pe.sched_point(SchedPoint::Atomic);
        let c = &self.inner.regions[dst_pe][cell];
        debug_assert_eq!(
            c.state.load(Ordering::Relaxed),
            0,
            "SPSC protocol violation: double publish"
        );
        #[cfg(feature = "race-detect")]
        match pe.race_detector() {
            Some(d) => d.sync_release(pe.rank(), self.loc(dst_pe, cell), || {
                c.state.store(word, Ordering::Release)
            }),
            None => c.state.store(word, Ordering::Release),
        }
        #[cfg(not(feature = "race-detect"))]
        c.state.store(word, Ordering::Release);
        if dst_pe != pe.rank() {
            if !pe.same_node_as(dst_pe) {
                // The signalling put is an 8-byte remote atomic store.
                pe.carry(dst_pe, TransferClass::Atomic, crate::transport::payload_bytes(&[word]))?;
            }
            pe.record_net(TransferClass::Atomic, std::mem::size_of::<u64>());
        }
        Ok(())
    }

    /// Read `range` of the calling PE's own published cell buffer.
    pub fn read_local<R>(&self, pe: &Pe, cell: usize, f: impl FnOnce(&[T]) -> R) -> R {
        debug_assert!(cell < self.inner.cells_per_pe);
        let c = &self.inner.regions[pe.rank()][cell];
        debug_assert_ne!(
            c.state.load(Ordering::Acquire),
            0,
            "SPSC protocol violation: read of a free cell"
        );
        #[cfg(feature = "race-detect")]
        if let Some(d) = pe.race_detector() {
            d.read(pe.rank(), self.loc(pe.rank(), cell), "SpscRing::read_local");
        }
        // SAFETY: the cell is published, so its single producer will not
        // touch the buffer until this PE releases it.
        f(unsafe { &*c.data.get() })
    }

    /// Mark the calling PE's own cell free again (`Release` store of 0) —
    /// the ack that returns the buffer to `producer_pe`'s free list.
    pub fn release(&self, pe: &Pe, cell: usize, producer_pe: usize) -> Result<(), ShmemError> {
        self.check(pe.rank(), cell, 0)?;
        self.inner.grid.check_pe(producer_pe)?;
        pe.sched_point(SchedPoint::Atomic);
        let c = &self.inner.regions[pe.rank()][cell];
        debug_assert_ne!(
            c.state.load(Ordering::Relaxed),
            0,
            "SPSC protocol violation: release of a free cell"
        );
        #[cfg(feature = "race-detect")]
        match pe.race_detector() {
            Some(d) => d.sync_release(pe.rank(), self.loc(pe.rank(), cell), || {
                c.state.store(0, Ordering::Release)
            }),
            None => c.state.store(0, Ordering::Release),
        }
        #[cfg(not(feature = "race-detect"))]
        c.state.store(0, Ordering::Release);
        if producer_pe != pe.rank() {
            if !pe.same_node_as(producer_pe) {
                // The ack travels back to the producer's node.
                pe.carry(producer_pe, TransferClass::Atomic, crate::transport::payload_bytes(&[0u64]))?;
            }
            pe.record_net(TransferClass::Atomic, std::mem::size_of::<u64>());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedSpec;
    use crate::spmd::{self, Harness};

    /// Ping a stream of buffers 0 -> 1 through `cells` cells reused
    /// round-robin; the consumer checks strict FIFO via the sequence
    /// embedded in the state word. Exercises wrap-around: `rounds` is far
    /// larger than the cell count.
    fn fifo_roundtrip(grid: Grid, cells: usize, rounds: u64, sched: Option<u64>) {
        let harness = match sched {
            Some(seed) => Harness::new(grid).sched(SchedSpec::random_walk(seed)),
            None => Harness::new(grid),
        };
        let results = spmd::run(harness, move |pe| {
            let ring = SpscRing::<u64>::new(pe, cells, 4).unwrap();
            let mut seen = Vec::new();
            if pe.rank() == 0 {
                for seq in 0..rounds {
                    let cell = (seq as usize) % cells;
                    while ring.state(pe, 1, cell) != 0 {
                        pe.poll_yield();
                    }
                    ring.write(pe, 1, cell, &[seq * 10, seq * 10 + 1]).unwrap();
                    ring.publish(pe, 1, cell, (seq << 32) | 3).unwrap();
                }
            } else {
                let mut expect = 0u64;
                while expect < rounds {
                    let cell = (expect as usize) % cells;
                    let word = ring.state(pe, pe.rank(), cell);
                    if word == 0 || (word >> 32) != expect {
                        pe.poll_yield();
                        continue;
                    }
                    let count = ((word & 0xffff_ffff) - 1) as usize;
                    ring.read_local(pe, cell, |buf| seen.extend_from_slice(&buf[..count]));
                    ring.release(pe, cell, 0).unwrap();
                    expect += 1;
                }
            }
            pe.barrier_all();
            seen
        })
        .unwrap();
        let expected: Vec<u64> = (0..rounds).flat_map(|s| [s * 10, s * 10 + 1]).collect();
        assert_eq!(results[1], expected, "FIFO order violated");
    }

    #[test]
    fn fifo_survives_cell_wraparound() {
        fifo_roundtrip(Grid::single_node(2).unwrap(), 2, 100, None);
    }

    #[test]
    fn fifo_holds_under_seeded_scheduler() {
        for seed in 0..4 {
            fifo_roundtrip(Grid::single_node(2).unwrap(), 2, 25, Some(seed));
        }
    }

    #[test]
    fn single_cell_backpressure_blocks_producer_until_release() {
        // With one cell the producer must observe the consumer's release
        // before every send: full/empty alternation, still FIFO.
        fifo_roundtrip(Grid::single_node(2).unwrap(), 1, 50, None);
        fifo_roundtrip(Grid::single_node(2).unwrap(), 1, 20, Some(7));
    }

    #[test]
    fn ring_cells_do_not_share_cache_lines() {
        // The padding audit: each (link, slot) state word must own its own
        // 128-byte region so remote producers' polls never false-share
        // with neighboring cells.
        assert_eq!(std::mem::align_of::<RingCell<u64>>(), 128);
        assert_eq!(std::mem::size_of::<RingCell<u64>>(), 128);
        assert_eq!(std::mem::size_of::<RingCell<[u8; 200]>>() % 128, 0);
    }

    #[test]
    fn bounds_and_shape_are_checked() {
        let grid = Grid::single_node(1).unwrap();
        spmd::run(grid, |pe| {
            let ring = SpscRing::<u8>::new(pe, 2, 4).unwrap();
            assert!(matches!(
                ring.write(pe, 0, 5, &[1]),
                Err(ShmemError::OutOfBounds { .. })
            ));
            assert!(matches!(
                ring.write(pe, 0, 0, &[0; 9]),
                Err(ShmemError::OutOfBounds { .. })
            ));
            assert!(matches!(
                ring.write(pe, 3, 0, &[1]),
                Err(ShmemError::InvalidPe { .. })
            ));
        })
        .unwrap();
    }

    #[test]
    fn mismatched_shapes_error_collectively() {
        let grid = Grid::single_node(2).unwrap();
        let results = spmd::run(grid, |pe| {
            SpscRing::<u8>::new(pe, pe.rank() + 1, 4).err().is_some()
        })
        .unwrap();
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn write_nbi_registers_pending_and_quiet_flushes_bytes() {
        let grid = Grid::new(2, 1).unwrap();
        spmd::run(grid, |pe| {
            let ring = SpscRing::<u64>::new(pe, 1, 4).unwrap();
            if pe.rank() == 0 {
                ring.write_nbi(pe, 1, 0, &[1, 2, 3]).unwrap();
                assert_eq!(pe.pending_nbi(), 1);
                assert_eq!(pe.quiet(), 24, "3 u64s flushed");
                ring.publish(pe, 1, 0, 4).unwrap();
                let s = pe.net_stats();
                assert_eq!(s.nbi_put.ops, 1);
                assert_eq!(s.nbi_put.bytes, 24);
                assert_eq!(s.quiet.ops, 1);
                assert_eq!(s.atomic.ops, 1, "cross-PE publish is one atomic");
            } else {
                while ring.state(pe, 1, 0) == 0 {
                    pe.poll_yield();
                }
                ring.read_local(pe, 0, |b| assert_eq!(&b[..3], &[1, 2, 3]));
                ring.release(pe, 0, 0).unwrap();
            }
            pe.barrier_all();
        })
        .unwrap();
    }

    #[test]
    fn accounting_matches_symmetric_heap_classes() {
        let grid = Grid::new(2, 2).unwrap();
        spmd::run(grid, |pe| {
            let ring = SpscRing::<u8>::new(pe, 1, 16).unwrap();
            if pe.rank() == 0 {
                ring.write(pe, 1, 0, &[7; 16]).unwrap(); // same node
                let s = pe.net_stats();
                assert_eq!(s.local_copy, crate::net::ClassStats { ops: 1, bytes: 16 });
                ring.publish(pe, 1, 0, 1).unwrap();
                assert_eq!(pe.net_stats().atomic.ops, 1);
            }
            pe.barrier_all();
            if pe.rank() == 1 {
                ring.release(pe, 0, 0).unwrap();
                // releasing to a same-node producer still models the ack put
                assert_eq!(pe.net_stats().atomic.ops, 1);
            }
            pe.barrier_all();
        })
        .unwrap();
    }
}
