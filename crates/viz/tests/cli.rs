//! End-to-end tests of the `actorprof-viz` binary — the paper's
//! visualization scripts, exercised as a real process against trace files
//! on disk.

use std::path::PathBuf;
use std::process::Command;

fn viz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_actorprof-viz"))
}

/// Write a tiny but complete trace directory by hand.
fn trace_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("actorprof-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("PE0_send_agg.csv"), "0,0,0,1,40,320\n").unwrap();
    std::fs::write(dir.join("PE1_send_agg.csv"), "0,1,0,0,10,80\n").unwrap();
    std::fs::write(
        dir.join("PE0_PAPI.csv"),
        "src_node,src_pe,dst_node,dst_pe,pkt_size,MAILBOXID,NUM_SENDS,PAPI_TOT_INS,PAPI_LST_INS\n\
         0,0,0,1,320,0,40,2400,960\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("PE1_PAPI.csv"),
        "src_node,src_pe,dst_node,dst_pe,pkt_size,MAILBOXID,NUM_SENDS,PAPI_TOT_INS,PAPI_LST_INS\n\
         0,1,0,0,80,0,10,600,240\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("physical.txt"),
        "local_send,512,0,1\nlocal_send,256,1,0\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("overall.txt"),
        "Absolute [PE0] TCOMM_PROFILING (100, 800, 100)\n\
         Absolute [PE1] TCOMM_PROFILING (50, 900, 50)\n",
    )
    .unwrap();
    dir
}

#[test]
fn logical_flag_renders_heatmap_and_violin() {
    let dir = trace_dir("l");
    let out = viz().args(["-l", dir.to_str().unwrap(), "2"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Logical trace"));
    assert!(stdout.contains("| 40"), "PE0 send total shown");
    assert!(dir.join("logical_heatmap.svg").exists());
    assert!(dir.join("logical_violin.svg").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn physical_flag_renders_buffer_heatmap() {
    let dir = trace_dir("p");
    let out = viz().args(["-p", dir.to_str().unwrap(), "2"]).output().unwrap();
    assert!(out.status.success());
    assert!(dir.join("physical_heatmap.svg").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn papi_flag_renders_one_chart_per_event() {
    let dir = trace_dir("lp");
    let out = viz().args(["-lp", dir.to_str().unwrap(), "2"]).output().unwrap();
    assert!(out.status.success());
    assert!(dir.join("papi_papi_tot_ins.svg").exists());
    assert!(dir.join("papi_papi_lst_ins.svg").exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PAPI_TOT_INS"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn overall_flag_renders_stacked_bars() {
    let dir = trace_dir("s");
    let out = viz().args(["-s", dir.to_str().unwrap(), "2"]).output().unwrap();
    assert!(out.status.success());
    assert!(dir.join("overall_absolute.svg").exists());
    assert!(dir.join("overall_relative.svg").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_usage_fails_with_help() {
    let out = viz().args(["-x", "/nonexistent", "2"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"));

    let out = viz().output().unwrap();
    assert!(!out.status.success());

    let out = viz().args(["-l", "/nonexistent", "0"]).output().unwrap();
    assert!(!out.status.success());
}
