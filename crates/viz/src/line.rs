//! Multi-series line charts — used for the strong/weak scaling curves
//! (the §I motivation: how irregular apps scale with PEs).

use crate::palette;
use crate::scale::LinearScale;
use crate::svg::SvgDoc;

/// One line series: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct LineSeries {
    /// Legend label.
    pub label: String,
    /// Data points, in increasing x order.
    pub points: Vec<(f64, f64)>,
}

impl LineSeries {
    /// Construct from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> LineSeries {
        LineSeries {
            label: label.into(),
            points,
        }
    }
}

/// Chart options.
#[derive(Debug, Clone, Default)]
pub struct LineSpec {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log10-transform the y values.
    pub log_y: bool,
}

/// Render line series.
pub fn render(series: &[LineSeries], spec: &LineSpec) -> SvgDoc {
    let width = 560.0;
    let height = 330.0;
    let (left, right, top, bottom) = (70.0, width - 130.0, 44.0, height - 48.0);
    let mut doc = SvgDoc::new(width, height);
    doc.text((left + right) / 2.0, 20.0, 13.0, "middle", &spec.title);

    let ty = |y: f64| if spec.log_y { (y.max(1e-12)).log10() } else { y };
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, y)| ty(*y)))
        .collect();
    let (x0, x1) = (
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y0, y1) = (
        ys.iter().copied().fold(f64::INFINITY, f64::min).min(0.0),
        ys.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    if !x0.is_finite() || !y1.is_finite() {
        doc.text(width / 2.0, height / 2.0, 11.0, "middle", "(no data)");
        return doc;
    }
    let sx = LinearScale::new(x0, x1.max(x0 + 1e-9), left, right);
    let sy = LinearScale::new(y0, y1.max(y0 + 1e-9), bottom, top);

    // axes + ticks
    doc.line(left, top, left, bottom, "#444444", 1.0);
    doc.line(left, bottom, right, bottom, "#444444", 1.0);
    for t in LinearScale::new(x0, x1.max(x0 + 1e-9), 0.0, 1.0).ticks(6) {
        let px = sx.map(t);
        doc.line(px, bottom, px, bottom + 4.0, "#444444", 1.0);
        doc.text(px, bottom + 16.0, 9.0, "middle", &format!("{t:.0}"));
    }
    for t in LinearScale::new(y0, y1.max(y0 + 1e-9), 0.0, 1.0).ticks(5) {
        let py = sy.map(t);
        doc.line(left - 4.0, py, left, py, "#444444", 1.0);
        let label = if spec.log_y {
            format!("1e{t:.0}")
        } else {
            format!("{t:.1}")
        };
        doc.text(left - 7.0, py + 3.0, 9.0, "end", &label);
    }
    doc.text((left + right) / 2.0, height - 8.0, 11.0, "middle", &spec.x_label);
    doc.vtext(16.0, (top + bottom) / 2.0, 11.0, &spec.y_label);

    // series
    for (i, s) in series.iter().enumerate() {
        let color = palette::SERIES[i % palette::SERIES.len()];
        for w in s.points.windows(2) {
            doc.line(
                sx.map(w[0].0),
                sy.map(ty(w[0].1)),
                sx.map(w[1].0),
                sy.map(ty(w[1].1)),
                color,
                2.0,
            );
        }
        for (x, y) in &s.points {
            doc.circle(sx.map(*x), sy.map(ty(*y)), 3.0, color);
        }
        // legend
        let ly = top + i as f64 * 18.0;
        doc.line(right + 12.0, ly, right + 30.0, ly, color, 2.0);
        doc.text(right + 34.0, ly + 3.0, 10.0, "start", &s.label);
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_and_legend() {
        let series = vec![
            LineSeries::new("cyclic", vec![(2.0, 1.0), (4.0, 1.3), (8.0, 1.6)]),
            LineSeries::new("range", vec![(2.0, 1.0), (4.0, 2.0), (8.0, 3.6)]),
        ];
        let spec = LineSpec {
            title: "Strong scaling".into(),
            x_label: "PEs".into(),
            y_label: "speedup".into(),
            log_y: false,
        };
        let svg = render(&series, &spec).render();
        assert!(svg.contains("Strong scaling"));
        assert!(svg.contains("cyclic"));
        assert!(svg.contains("range"));
        assert!(svg.contains("circle"), "point markers drawn");
    }

    #[test]
    fn log_axis_labels_decades() {
        let series = vec![LineSeries::new("a", vec![(1.0, 10.0), (2.0, 100_000.0)])];
        let spec = LineSpec {
            log_y: true,
            ..Default::default()
        };
        let svg = render(&series, &spec).render();
        assert!(svg.contains("1e"), "decade labels present");
    }

    #[test]
    fn empty_series_renders_placeholder() {
        let svg = render(&[], &LineSpec::default()).render();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn single_point_series_is_safe() {
        let series = vec![LineSeries::new("one", vec![(5.0, 7.0)])];
        let svg = render(&series, &LineSpec::default()).render();
        assert!(svg.contains("one"));
    }
}
