//! The communication heatmap — ActorProf's take on CrayPat's "Mosaic
//! Report" (§III-D).
//!
//! Rows are source PEs, columns destination PEs, color encodes the number
//! of sends. Following the paper, the **last column** carries each PE's
//! total sends and the **last row** each PE's total recvs, separated from
//! the matrix by a gap.

use actorprof::Matrix;

use crate::palette;
use crate::scale::Norm;
use crate::svg::SvgDoc;

/// Layout and scaling options for a heatmap.
#[derive(Debug, Clone)]
pub struct HeatmapSpec {
    /// Chart title.
    pub title: String,
    /// Pixel size of one matrix cell.
    pub cell: f64,
    /// Color normalization (log by default — communication counts are
    /// heavy-tailed).
    pub norm: Norm,
    /// Whether to append the totals row/column.
    pub totals: bool,
}

impl Default for HeatmapSpec {
    fn default() -> Self {
        HeatmapSpec {
            title: String::new(),
            cell: 18.0,
            norm: Norm::Log,
            totals: true,
        }
    }
}

impl HeatmapSpec {
    /// A default spec with a title.
    pub fn titled(title: impl Into<String>) -> HeatmapSpec {
        HeatmapSpec {
            title: title.into(),
            ..Default::default()
        }
    }
}

const MARGIN_LEFT: f64 = 58.0;
const MARGIN_TOP: f64 = 40.0;
const GAP: f64 = 6.0;
const COLORBAR_W: f64 = 14.0;

/// Render a send-count matrix as an SVG heatmap.
pub fn render(matrix: &Matrix, spec: &HeatmapSpec) -> SvgDoc {
    let n = matrix.n();
    let cell = spec.cell;
    let extra = if spec.totals { cell + GAP } else { 0.0 };
    let grid_w = n as f64 * cell;
    let width = MARGIN_LEFT + grid_w + extra + GAP + COLORBAR_W + 58.0;
    let height = MARGIN_TOP + grid_w + extra + 46.0;
    let mut doc = SvgDoc::new(width, height);

    doc.text(
        MARGIN_LEFT + grid_w / 2.0,
        18.0,
        13.0,
        "middle",
        &spec.title,
    );

    let row_totals = matrix.row_totals();
    let col_totals = matrix.col_totals();
    let cell_max = matrix.max();
    let totals_max = row_totals
        .iter()
        .chain(col_totals.iter())
        .copied()
        .max()
        .unwrap_or(0);

    let fill_for = |v: u64, max: u64| -> String {
        if v == 0 {
            palette::ZERO_CELL.to_string()
        } else {
            palette::sequential(spec.norm.apply(v, max))
        }
    };

    // matrix cells
    for src in 0..n {
        for dst in 0..n {
            let v = matrix.get(src, dst);
            doc.rect(
                MARGIN_LEFT + dst as f64 * cell,
                MARGIN_TOP + src as f64 * cell,
                cell - 1.0,
                cell - 1.0,
                &fill_for(v, cell_max),
                Some(&format!("PE{src} -> PE{dst}: {v}")),
            );
        }
    }

    if spec.totals {
        // last column: total sends per source PE
        for (src, &v) in row_totals.iter().enumerate() {
            doc.rect(
                MARGIN_LEFT + grid_w + GAP,
                MARGIN_TOP + src as f64 * cell,
                cell - 1.0,
                cell - 1.0,
                &fill_for(v, totals_max),
                Some(&format!("PE{src} total sends: {v}")),
            );
        }
        // last row: total recvs per destination PE
        for (dst, &v) in col_totals.iter().enumerate() {
            doc.rect(
                MARGIN_LEFT + dst as f64 * cell,
                MARGIN_TOP + grid_w + GAP,
                cell - 1.0,
                cell - 1.0,
                &fill_for(v, totals_max),
                Some(&format!("PE{dst} total recvs: {v}")),
            );
        }
        doc.text(
            MARGIN_LEFT + grid_w + GAP + cell / 2.0,
            MARGIN_TOP - 6.0,
            9.0,
            "middle",
            "send",
        );
        doc.text(
            MARGIN_LEFT - 6.0,
            MARGIN_TOP + grid_w + GAP + cell * 0.7,
            9.0,
            "end",
            "recv",
        );
    }

    // axis labels (every PE for small n, sparse for big n)
    let step = if n <= 20 { 1 } else { n / 8 };
    for i in (0..n).step_by(step.max(1)) {
        doc.text(
            MARGIN_LEFT + i as f64 * cell + cell / 2.0,
            MARGIN_TOP + grid_w + extra + 14.0,
            9.0,
            "middle",
            &i.to_string(),
        );
        doc.text(
            MARGIN_LEFT - 6.0,
            MARGIN_TOP + i as f64 * cell + cell * 0.7,
            9.0,
            "end",
            &i.to_string(),
        );
    }
    doc.text(
        MARGIN_LEFT + grid_w / 2.0,
        height - 8.0,
        11.0,
        "middle",
        "destination PE",
    );
    doc.vtext(16.0, MARGIN_TOP + grid_w / 2.0, 11.0, "source PE");

    // colorbar
    let bar_x = MARGIN_LEFT + grid_w + extra + GAP;
    let bar_h = grid_w;
    let steps = 40;
    for s in 0..steps {
        let t = 1.0 - s as f64 / (steps - 1) as f64;
        doc.rect(
            bar_x,
            MARGIN_TOP + s as f64 * bar_h / steps as f64,
            COLORBAR_W,
            bar_h / steps as f64 + 0.5,
            &palette::sequential(t),
            None,
        );
    }
    doc.frame(bar_x, MARGIN_TOP, COLORBAR_W, bar_h, "#888888");
    doc.text(
        bar_x + COLORBAR_W + 4.0,
        MARGIN_TOP + 10.0,
        9.0,
        "start",
        &cell_max.to_string(),
    );
    doc.text(bar_x + COLORBAR_W + 4.0, MARGIN_TOP + bar_h, 9.0, "start", "0");

    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        let mut m = Matrix::zeros(3);
        m.set(0, 1, 100);
        m.set(1, 0, 10);
        m.set(2, 2, 1);
        m
    }

    #[test]
    fn renders_all_cells_with_tooltips() {
        let svg = render(&sample_matrix(), &HeatmapSpec::titled("test")).render();
        assert!(svg.contains("PE0 -&gt; PE1: 100"));
        assert!(svg.contains("PE2 -&gt; PE2: 1"));
        assert!(svg.contains("test"));
    }

    #[test]
    fn totals_row_and_column_present_by_default() {
        let svg = render(&sample_matrix(), &HeatmapSpec::default()).render();
        assert!(svg.contains("PE0 total sends: 100"));
        assert!(svg.contains("PE1 total recvs: 100"));
        assert!(svg.contains("PE2 total recvs: 1"));
    }

    #[test]
    fn totals_can_be_disabled() {
        let spec = HeatmapSpec {
            totals: false,
            ..Default::default()
        };
        let svg = render(&sample_matrix(), &spec).render();
        assert!(!svg.contains("total sends"));
    }

    #[test]
    fn zero_cells_use_zero_color() {
        let svg = render(&sample_matrix(), &HeatmapSpec::default()).render();
        assert!(svg.contains(palette::ZERO_CELL));
    }

    #[test]
    fn empty_matrix_renders() {
        let m = Matrix::zeros(2);
        let svg = render(&m, &HeatmapSpec::default()).render();
        assert!(svg.starts_with("<svg"));
    }
}
