//! A minimal SVG document builder — just the primitives the ActorProf
//! charts need, with proper text escaping and deterministic output.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escape text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgDoc {
    /// A document of the given pixel size.
    pub fn new(width: f64, height: f64) -> SvgDoc {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// A filled rectangle with an optional tooltip (`<title>`).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, tooltip: Option<&str>) {
        match tooltip {
            Some(t) => {
                let _ = write!(
                    self.body,
                    r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"><title>{}</title></rect>"#,
                    escape(t)
                );
            }
            None => {
                let _ = write!(
                    self.body,
                    r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>"#
                );
            }
        }
        self.body.push('\n');
    }

    /// A stroked, unfilled rectangle (grid cells, chart frames).
    pub fn frame(&mut self, x: f64, y: f64, w: f64, h: f64, stroke: &str) {
        let _ = write!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="none" stroke="{stroke}" stroke-width="1"/>"#
        );
        self.body.push('\n');
    }

    /// A line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
        self.body.push('\n');
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#
        );
        self.body.push('\n');
    }

    /// A filled polygon from `(x, y)` points.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, opacity: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = write!(
            self.body,
            r#"<polygon points="{}" fill="{fill}" fill-opacity="{opacity:.2}"/>"#,
            pts.join(" ")
        );
        self.body.push('\n');
    }

    /// Text with anchor `start`/`middle`/`end`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            escape(content)
        );
        self.body.push('\n');
    }

    /// Text rotated 90° counter-clockwise around its anchor (y-axis labels).
    pub fn vtext(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x:.2} {y:.2})">{}</text>"#,
            escape(content)
        );
        self.body.push('\n');
    }

    /// Serialize the document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_wellformed_shell() {
        let mut d = SvgDoc::new(100.0, 50.0);
        d.rect(0.0, 0.0, 10.0, 10.0, "#ff0000", None);
        d.text(5.0, 5.0, 10.0, "middle", "hi");
        let s = d.render();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert!(s.contains("width=\"100\""));
        assert!(s.contains("#ff0000"));
        assert!(s.contains(">hi</text>"));
    }

    #[test]
    fn text_is_escaped() {
        let mut d = SvgDoc::new(10.0, 10.0);
        d.text(0.0, 0.0, 8.0, "start", "a<b & \"c\"");
        d.rect(0.0, 0.0, 1.0, 1.0, "#000", Some("x<y"));
        let s = d.render();
        assert!(s.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(s.contains("<title>x&lt;y</title>"));
        assert!(!s.contains("a<b"));
    }

    #[test]
    fn save_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("viz-svg-{}", std::process::id()));
        let path = dir.join("sub/chart.svg");
        SvgDoc::new(1.0, 1.0).save(&path).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
