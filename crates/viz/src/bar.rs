//! Per-PE bar graphs (§III-D) — e.g. `PAPI_TOT_INS` vs PE (Figs 10–11).
//!
//! Supports a log10 y-axis: under 1D Cyclic the per-PE instruction counts
//! span "three to four orders of magnitude" (footnote 1), so the linear
//! view of the paper shows most PEs as visually empty — both views are
//! available.

use crate::palette;
use crate::scale::LinearScale;
use crate::svg::SvgDoc;

/// Bar chart options.
#[derive(Debug, Clone)]
pub struct BarSpec {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log10 y-axis.
    pub log: bool,
    /// Bar fill color.
    pub color: String,
}

impl Default for BarSpec {
    fn default() -> Self {
        BarSpec {
            title: String::new(),
            y_label: String::new(),
            log: false,
            color: palette::SERIES[0].to_string(),
        }
    }
}

/// Render per-PE `values` as a bar graph.
pub fn render(values: &[u64], spec: &BarSpec) -> SvgDoc {
    let n = values.len().max(1);
    let bar_w = (560.0 / n as f64).clamp(6.0, 48.0);
    let plot_left = 66.0;
    let width = plot_left + n as f64 * bar_w + 28.0;
    let height = 300.0;
    let plot_top = 42.0;
    let plot_bottom = height - 44.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 20.0, 13.0, "middle", &spec.title);

    let transform = |v: u64| -> f64 {
        if spec.log {
            (1.0 + v as f64).log10()
        } else {
            v as f64
        }
    };
    let max_t = values.iter().map(|&v| transform(v)).fold(0.0f64, f64::max);
    let y = LinearScale::new(0.0, max_t.max(1e-9), plot_bottom, plot_top);

    // axes
    doc.line(plot_left, plot_top, plot_left, plot_bottom, "#444444", 1.0);
    doc.line(
        plot_left,
        plot_bottom,
        plot_left + n as f64 * bar_w,
        plot_bottom,
        "#444444",
        1.0,
    );
    if spec.log {
        // decade ticks
        let decades = max_t.ceil() as i64;
        for d in 0..=decades {
            let py = y.map(d as f64);
            doc.line(plot_left - 4.0, py, plot_left, py, "#444444", 1.0);
            doc.text(plot_left - 7.0, py + 3.0, 9.0, "end", &format!("1e{d}"));
        }
    } else {
        for t in LinearScale::new(0.0, max_t.max(1e-9), 0.0, 1.0).ticks(5) {
            let py = y.map(t);
            doc.line(plot_left - 4.0, py, plot_left, py, "#444444", 1.0);
            doc.text(plot_left - 7.0, py + 3.0, 9.0, "end", &format!("{t:.0}"));
        }
    }
    doc.vtext(
        16.0,
        (plot_top + plot_bottom) / 2.0,
        11.0,
        if spec.y_label.is_empty() {
            "count"
        } else {
            &spec.y_label
        },
    );

    for (pe, &v) in values.iter().enumerate() {
        let x = plot_left + pe as f64 * bar_w;
        let top = y.map(transform(v));
        doc.rect(
            x + 1.0,
            top,
            bar_w - 2.0,
            (plot_bottom - top).max(0.0),
            &spec.color,
            Some(&format!("PE{pe}: {v}")),
        );
        let label_step = if n <= 24 { 1 } else { n / 12 };
        if pe % label_step.max(1) == 0 {
            doc.text(
                x + bar_w / 2.0,
                plot_bottom + 14.0,
                9.0,
                "middle",
                &pe.to_string(),
            );
        }
    }
    doc.text(
        plot_left + n as f64 * bar_w / 2.0,
        height - 8.0,
        11.0,
        "middle",
        "PE",
    );
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bars_with_tooltips() {
        let spec = BarSpec {
            title: "PAPI_TOT_INS vs PE".into(),
            ..Default::default()
        };
        let svg = render(&[100, 5, 30], &spec).render();
        assert!(svg.contains("PE0: 100"));
        assert!(svg.contains("PE2: 30"));
        assert!(svg.contains("PAPI_TOT_INS vs PE"));
    }

    #[test]
    fn log_mode_emits_decade_ticks() {
        let spec = BarSpec {
            log: true,
            ..Default::default()
        };
        let svg = render(&[1, 100, 1_000_000], &spec).render();
        assert!(svg.contains("1e0"));
        assert!(svg.contains("1e6"));
    }

    #[test]
    fn zero_values_render_flat() {
        let svg = render(&[0, 0], &BarSpec::default()).render();
        assert!(svg.contains("PE0: 0"));
    }

    #[test]
    fn empty_series_is_safe() {
        let svg = render(&[], &BarSpec::default()).render();
        assert!(svg.starts_with("<svg"));
    }
}
