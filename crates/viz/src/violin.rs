//! Quartile violin plots (§III-D, Figs 5 and 7).
//!
//! Each violin shows: the sample density as a mirrored shape (Gaussian
//! KDE), the median as a white dot, quartile whiskers, and the maximum
//! outlier as "the farthest point on the top of the colored shape".

use actorprof::Quartiles;

use crate::palette;
use crate::scale::LinearScale;
use crate::svg::SvgDoc;

/// One violin's data: a label (e.g. `"cyclic send"`) and the per-PE sample.
#[derive(Debug, Clone)]
pub struct ViolinSeries {
    /// X-axis label.
    pub label: String,
    /// Per-PE totals.
    pub values: Vec<u64>,
}

impl ViolinSeries {
    /// Construct from a label and sample.
    pub fn new(label: impl Into<String>, values: Vec<u64>) -> ViolinSeries {
        ViolinSeries {
            label: label.into(),
            values,
        }
    }
}

/// Gaussian kernel density estimate of `values` over `points` grid points
/// spanning `[lo, hi]`; bandwidth by Silverman's rule of thumb.
fn kde(values: &[u64], lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || points < 2 {
        return vec![];
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<u64>() as f64 / n;
    let var = values
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / n.max(1.0);
    let sd = var.sqrt();
    let span = (hi - lo).max(1.0);
    let bw = if sd > 0.0 {
        1.06 * sd * n.powf(-0.2)
    } else {
        span / 20.0
    }
    .max(span / 200.0);
    (0..points)
        .map(|i| {
            let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
            let d: f64 = values
                .iter()
                .map(|&v| {
                    let z = (x - v as f64) / bw;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                / (n * bw * (2.0 * std::f64::consts::PI).sqrt());
            (x, d)
        })
        .collect()
}

/// Render a set of violins side by side.
pub fn render(series: &[ViolinSeries], title: &str) -> SvgDoc {
    let slot_w = 86.0;
    let width = 70.0 + series.len() as f64 * slot_w + 20.0;
    let height = 320.0;
    let plot_top = 44.0;
    let plot_bottom = height - 52.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(width / 2.0, 20.0, 13.0, "middle", title);

    let global_max = series
        .iter()
        .flat_map(|s| s.values.iter())
        .copied()
        .max()
        .unwrap_or(0) as f64;
    let y = LinearScale::new(0.0, global_max.max(1.0), plot_bottom, plot_top);

    // y axis + ticks
    doc.line(60.0, plot_top, 60.0, plot_bottom, "#444444", 1.0);
    for t in LinearScale::new(0.0, global_max.max(1.0), 0.0, 1.0).ticks(5) {
        let py = y.map(t);
        doc.line(56.0, py, 60.0, py, "#444444", 1.0);
        doc.text(52.0, py + 3.0, 9.0, "end", &format_count(t));
    }

    for (i, s) in series.iter().enumerate() {
        let cx = 70.0 + i as f64 * slot_w + slot_w / 2.0;
        let color = palette::SERIES[i % palette::SERIES.len()];
        let q = Quartiles::of(&s.values);

        // density shape, mirrored around cx
        let density = kde(&s.values, 0.0, global_max.max(1.0), 60);
        let dmax = density.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
        if dmax > 0.0 {
            let half_w = slot_w * 0.42;
            let mut pts: Vec<(f64, f64)> = density
                .iter()
                .map(|(v, d)| (cx - half_w * d / dmax, y.map(*v)))
                .collect();
            pts.extend(
                density
                    .iter()
                    .rev()
                    .map(|(v, d)| (cx + half_w * d / dmax, y.map(*v))),
            );
            doc.polygon(&pts, color, 0.55);
        }

        // quartile whisker and median dot
        doc.line(cx, y.map(q.q1), cx, y.map(q.q3), "#222222", 3.0);
        doc.line(cx, y.map(q.min), cx, y.map(q.max), "#222222", 1.0);
        doc.circle(cx, y.map(q.median), 3.5, "#ffffff");
        // the maximum outlier marker on top
        doc.circle(cx, y.map(q.max), 2.0, "#222222");

        doc.text(cx, height - 34.0, 10.0, "middle", &s.label);
        doc.text(
            cx,
            height - 20.0,
            9.0,
            "middle",
            &format!("max {}", format_count(q.max)),
        );
    }
    doc
}

fn format_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kde_integrates_to_roughly_one() {
        let values = vec![10, 20, 20, 30, 40];
        let pts = kde(&values, 0.0, 50.0, 200);
        let dx = 50.0 / 199.0;
        let integral: f64 = pts.iter().map(|(_, d)| d * dx).sum();
        assert!((integral - 1.0).abs() < 0.15, "integral = {integral}");
    }

    #[test]
    fn kde_handles_constant_sample() {
        let pts = kde(&[5, 5, 5], 0.0, 10.0, 50);
        assert_eq!(pts.len(), 50);
        let peak = pts
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((peak.0 - 5.0).abs() < 0.5, "peak at {}", peak.0);
    }

    #[test]
    fn kde_empty_is_empty() {
        assert!(kde(&[], 0.0, 1.0, 10).is_empty());
    }

    #[test]
    fn render_includes_labels_and_max_markers() {
        let series = vec![
            ViolinSeries::new("cyclic send", vec![100, 200, 5000, 150]),
            ViolinSeries::new("range send", vec![900, 1000, 1100, 950]),
        ];
        let svg = render(&series, "Violin test").render();
        assert!(svg.contains("cyclic send"));
        assert!(svg.contains("range send"));
        assert!(svg.contains("max 5.0k"));
        assert!(svg.contains("Violin test"));
        assert!(svg.contains("polygon"), "density shape rendered");
    }

    #[test]
    fn render_of_empty_series_is_safe() {
        let svg = render(&[ViolinSeries::new("empty", vec![])], "t").render();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn format_count_units() {
        assert_eq!(format_count(950.0), "950");
        assert_eq!(format_count(1500.0), "1.5k");
        assert_eq!(format_count(2_500_000.0), "2.5M");
    }
}
