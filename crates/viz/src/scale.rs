//! Value→position scales for axes and color normalization.

/// Normalize counts into `[0, 1]`, linearly or logarithmically.
///
/// The log variant is what the heatmaps and PAPI bars need: the paper's
/// footnote 1 notes per-PE values spanning "three to four orders of
/// magnitude", which a linear scale would crush to invisibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// `v / max`.
    Linear,
    /// `ln(1 + v) / ln(1 + max)` — defined at 0, monotone, order-of-
    /// magnitude friendly.
    Log,
}

impl Norm {
    /// Normalize `v` against `max`. Returns 0 when `max == 0`.
    pub fn apply(&self, v: u64, max: u64) -> f64 {
        if max == 0 {
            return 0.0;
        }
        match self {
            Norm::Linear => v as f64 / max as f64,
            Norm::Log => ((1.0 + v as f64).ln()) / ((1.0 + max as f64).ln()),
        }
    }
}

/// A linear mapping from a data domain to pixel range (possibly inverted,
/// for SVG's downward y axis).
#[derive(Debug, Clone, Copy)]
pub struct LinearScale {
    d0: f64,
    d1: f64,
    r0: f64,
    r1: f64,
}

impl LinearScale {
    /// Map `[d0, d1]` onto `[r0, r1]`.
    pub fn new(d0: f64, d1: f64, r0: f64, r1: f64) -> LinearScale {
        LinearScale { d0, d1, r0, r1 }
    }

    /// Position of `v`.
    pub fn map(&self, v: f64) -> f64 {
        let span = self.d1 - self.d0;
        if span.abs() < 1e-300 {
            return self.r0;
        }
        self.r0 + (v - self.d0) / span * (self.r1 - self.r0)
    }

    /// Round-numbered tick positions covering the domain (≈ `n` ticks).
    pub fn ticks(&self, n: usize) -> Vec<f64> {
        let span = (self.d1 - self.d0).abs();
        if span < 1e-300 || n == 0 {
            return vec![self.d0];
        }
        let raw_step = span / n as f64;
        let mag = 10f64.powf(raw_step.log10().floor());
        let step = [1.0, 2.0, 5.0, 10.0]
            .iter()
            .map(|m| m * mag)
            .find(|s| span / s <= n as f64)
            .unwrap_or(10.0 * mag);
        let lo = (self.d0.min(self.d1) / step).ceil() * step;
        let hi = self.d0.max(self.d1);
        let mut out = Vec::new();
        let mut t = lo;
        while t <= hi + step * 1e-9 {
            out.push(t);
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_norm() {
        assert_eq!(Norm::Linear.apply(0, 100), 0.0);
        assert_eq!(Norm::Linear.apply(50, 100), 0.5);
        assert_eq!(Norm::Linear.apply(100, 100), 1.0);
        assert_eq!(Norm::Linear.apply(5, 0), 0.0);
    }

    #[test]
    fn log_norm_is_monotone_and_bounded() {
        let max = 1_000_000;
        let mut last = -1.0;
        for v in [0u64, 1, 10, 100, 10_000, 1_000_000] {
            let t = Norm::Log.apply(v, max);
            assert!(t > last);
            assert!((0.0..=1.0).contains(&t));
            last = t;
        }
        assert_eq!(Norm::Log.apply(1_000_000, 1_000_000), 1.0);
    }

    #[test]
    fn scale_maps_and_inverts() {
        let s = LinearScale::new(0.0, 10.0, 100.0, 0.0); // inverted range
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 0.0);
        assert_eq!(s.map(5.0), 50.0);
    }

    #[test]
    fn degenerate_domain_is_safe() {
        let s = LinearScale::new(3.0, 3.0, 0.0, 10.0);
        assert_eq!(s.map(3.0), 0.0);
        assert_eq!(s.ticks(5), vec![3.0]);
    }

    #[test]
    fn ticks_are_round_and_cover() {
        let s = LinearScale::new(0.0, 97.0, 0.0, 1.0);
        let t = s.ticks(5);
        assert!(t.contains(&0.0));
        assert!(t.len() >= 3 && t.len() <= 7);
        for w in t.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(*t.last().unwrap() <= 97.0);
    }
}
