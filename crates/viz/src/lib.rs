//! # actorprof-viz — visualization of ActorProf traces
//!
//! The Rust counterpart of the paper's Python visualizers (`logical.py`,
//! `physical.py`, `papi.py`, `Overall.py`, §III-D), rendering to SVG files
//! and to ASCII for terminals:
//!
//! - [`heatmap`] — the CrayPat-"Mosaic-Report"-inspired communication
//!   matrix, with per-PE total sends/recvs in the last column/row;
//! - [`violin`] — quartile violin plots of per-PE send/recv totals
//!   (density shape, white median dot, max outlier on top);
//! - [`bar`] — per-PE bar graphs (e.g. `PAPI_TOT_INS`), with log scale for
//!   the orders-of-magnitude ranges of Fig 10–11;
//! - [`stacked`] — MAIN/COMM/PROC stacked bars, absolute and relative
//!   (Figs 12–13);
//! - [`mod@line`] — multi-series line charts for the scaling harnesses;
//! - [`cockpit`] — the live glass-cockpit terminal view over the observer
//!   [`Frame`](actorprof::Frame) stream, plus the post-mortem
//!   flight-recorder replay.
//!
//! The `actorprof-viz` binary mirrors the paper's run-time flags
//! (`-l`, `-p`, `-lp`, `-s`) against a trace directory.

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod ascii;
pub mod bar;
pub mod cockpit;
pub mod heatmap;
pub mod line;
pub mod palette;
pub mod scale;
pub mod stacked;
pub mod svg;
pub mod violin;

pub use cockpit::{Cockpit, CockpitConfig};
pub use heatmap::HeatmapSpec;
pub use svg::SvgDoc;
