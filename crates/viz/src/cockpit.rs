//! Glass-cockpit live terminal view of a running FA-BSP world.
//!
//! The paper's pipeline renders profiles *after* the run; the cockpit is
//! the live complement: point it at the observer [`Frame`] stream
//! (`Profiler::observe`) and redraw once per tick. Everything is plain
//! ANSI — no TUI crate — so it works over ssh, in CI logs (with
//! [`CockpitConfig::color`] off), and byte-stably in golden tests.
//!
//! Panels, top to bottom:
//!
//! 1. **Master status** — superstep reached, items/s over the tick, net
//!    retries and restarts (the recovery counters worth glancing at).
//! 2. **Governor** — in continuous mode, the overhead governor's verdict
//!    for the window: measured overhead vs budget, stride, cadence.
//! 3. **Hottest phases** — top-N phases by in-phase cycles this tick,
//!    with the `file:line` of the span site doing the work.
//! 4. **Worker load** — per-PE send bars plus conveyor occupancy gauges;
//!    the busiest PE is flagged.
//! 5. **Timeline** — a scrolling sparkline of per-tick throughput.
//!
//! After a crash, [`Cockpit::render_replay`] turns the post-mortem
//! `flightrec-pe*.json` dumps ([`FlightDump::load_dir`]) into the same
//! cockpit idiom: a merged, time-rebased event log per PE.

use std::collections::VecDeque;

use actorprof::{Counter, Frame, Gauge, Phase};
use fabsp_telemetry::{FlightDump, FlightEvent, PhaseSite};

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// How the cockpit renders. The `site_for` hook exists so golden tests can
/// pin phase attribution to a fixture instead of whatever span sites the
/// test binary happened to execute first.
#[derive(Debug, Clone)]
pub struct CockpitConfig {
    /// Bar width of the worker-load panel, in cells.
    pub width: usize,
    /// Hottest phases shown.
    pub top_n: usize,
    /// Sparkline history length (ticks).
    pub timeline: usize,
    /// Emit ANSI color + screen-clear codes. Off for goldens and CI logs.
    pub color: bool,
    /// Phase → `file:line` attribution source. Defaults to the runtime's
    /// first-caller-wins site registry ([`fabsp_telemetry::phase_site`]).
    pub site_for: fn(Phase) -> Option<PhaseSite>,
}

impl Default for CockpitConfig {
    fn default() -> CockpitConfig {
        CockpitConfig {
            width: 24,
            top_n: 3,
            timeline: 32,
            color: true,
            site_for: fabsp_telemetry::phase_site,
        }
    }
}

impl CockpitConfig {
    /// The golden-test / CI-log configuration: no ANSI, fixture sites.
    pub fn plain(site_for: fn(Phase) -> Option<PhaseSite>) -> CockpitConfig {
        CockpitConfig {
            color: false,
            site_for,
            ..CockpitConfig::default()
        }
    }
}

/// The stateful live renderer: remembers the previous tick's cycle stamp
/// (for true rates) and the throughput history (for the timeline lane).
/// One instance per observed run; feed every [`Frame`] to
/// [`render`](Cockpit::render).
#[derive(Debug)]
pub struct Cockpit {
    cfg: CockpitConfig,
    prev_at_cycles: Option<u64>,
    history: VecDeque<u64>,
}

impl Cockpit {
    /// A cockpit with `cfg`.
    pub fn new(cfg: CockpitConfig) -> Cockpit {
        Cockpit {
            cfg,
            prev_at_cycles: None,
            history: VecDeque::new(),
        }
    }

    /// The screen-clear prefix for live redraws (empty when color is off).
    pub fn clear(&self) -> &'static str {
        if self.cfg.color {
            "\x1b[2J\x1b[H"
        } else {
            ""
        }
    }

    fn paint(&self, code: &str, s: &str) -> String {
        if self.cfg.color {
            format!("\x1b[{code}m{s}\x1b[0m")
        } else {
            s.to_string()
        }
    }

    /// Render one observer tick as the full cockpit screen.
    pub fn render(&mut self, frame: &Frame) -> String {
        let sends_tick = frame.delta.counter_total(Counter::ActorSends);
        let secs = self
            .prev_at_cycles
            .map(|prev| fabsp_hwpc::cycles_to_secs(frame.at_cycles.saturating_sub(prev)))
            .filter(|s| *s > 0.0);
        self.prev_at_cycles = Some(frame.at_cycles);
        self.history.push_back(sends_tick);
        while self.history.len() > self.cfg.timeline.max(1) {
            self.history.pop_front();
        }

        // -- master status -------------------------------------------------
        let ss_idx = Phase::Superstep as usize;
        let superstep = frame
            .total
            .pes
            .iter()
            .map(|p| p.span_counts.get(ss_idx).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let items = match secs {
            Some(secs) => format!("{:.0}/s", sends_tick as f64 / secs),
            None => format!("+{sends_tick}"),
        };
        let mut out = format!(
            "┌ actorprof cockpit ── tick {:>4} ┐\n\
             superstep {superstep}  items {items}  net-retries {}  restarts {}\n",
            frame.seq,
            frame.total.counter_total(Counter::NetRetries),
            frame.total.counter_total(Counter::Restarts),
        );

        // -- governor ------------------------------------------------------
        if let Some(g) = &frame.governor {
            let verdict = if g.within_budget { "ok" } else { "OVER" };
            let line = format!(
                "governor  overhead {:.2}% [{verdict}]  stride {}  cadence {:?}",
                g.overhead_pct, g.stride, g.cadence
            );
            let line = if g.within_budget {
                line
            } else {
                self.paint("31", &line)
            };
            out.push_str(&line);
            out.push('\n');
        }

        // -- hottest phases ------------------------------------------------
        // Per-tick in-phase cycles; a tick where nothing completed (or the
        // very first frame) falls back to the cumulative totals so the
        // panel never goes blank mid-flight.
        let mut hot: Vec<(Phase, u64, u64)> = Phase::ALL
            .iter()
            .map(|&ph| {
                (
                    ph,
                    frame.delta.span_cycles_total(ph),
                    frame.delta.span_count_total(ph),
                )
            })
            .collect();
        let mut basis = "tick";
        if hot.iter().all(|(_, cy, _)| *cy == 0) {
            basis = "total";
            hot = Phase::ALL
                .iter()
                .map(|&ph| {
                    (
                        ph,
                        frame.total.span_cycles_total(ph),
                        frame.total.span_count_total(ph),
                    )
                })
                .collect();
        }
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.label().cmp(b.0.label())));
        let all_cycles: u64 = hot.iter().map(|(_, cy, _)| cy).sum();
        out.push_str(&format!("hottest phases ({basis})\n"));
        for (ph, cy, n) in hot.iter().take(self.cfg.top_n) {
            if *cy == 0 {
                continue;
            }
            let site = (self.cfg.site_for)(*ph)
                .map(|(file, line)| format!("{file}:{line}"))
                .unwrap_or_else(|| "?".to_string());
            out.push_str(&format!(
                "  {:<9} {:>9.1}us {:>5.1}% x{n}  {site}\n",
                ph.label(),
                fabsp_hwpc::cycles_to_us(*cy),
                *cy as f64 / all_cycles.max(1) as f64 * 100.0,
            ));
        }

        // -- worker load ---------------------------------------------------
        let per_pe = frame.delta.counter_per_pe(Counter::ActorSends);
        let max_pe = per_pe.iter().copied().max().unwrap_or(0);
        let busiest = per_pe
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i);
        out.push_str("worker load (sends/tick | conveyor buf, backlog)\n");
        for (pe, &v) in per_pe.iter().enumerate() {
            let fill = if max_pe > 0 {
                (v as f64 / max_pe as f64 * self.cfg.width as f64).round() as usize
            } else {
                0
            };
            let bar: String = std::iter::repeat_n('#', fill)
                .chain(std::iter::repeat_n('.', self.cfg.width - fill))
                .collect();
            let flag = if busiest == Some(pe) && max_pe > 0 {
                "*"
            } else {
                " "
            };
            let line = format!(
                "  pe{pe:<3}{flag}|{bar}| {v:>6}  buf {:>4} lag {:>4}\n",
                frame.total.gauge(pe, Gauge::ConveyorBufferedItems),
                frame.total.gauge(pe, Gauge::ConveyorPullBacklog),
            );
            if busiest == Some(pe) && max_pe > 0 {
                out.push_str(&self.paint("1", line.trim_end_matches('\n')));
                out.push('\n');
            } else {
                out.push_str(&line);
            }
        }

        // -- timeline ------------------------------------------------------
        let hist_max = self.history.iter().copied().max().unwrap_or(0).max(1);
        let lane: String = self
            .history
            .iter()
            .map(|&v| SPARKS[(v as f64 / hist_max as f64 * 7.0).round() as usize])
            .collect();
        out.push_str(&format!("timeline  |{lane}|\n"));
        out.push_str("└──────────────────────────────┘\n");
        out
    }

    /// Render post-mortem flight-recorder dumps (see
    /// [`FlightDump::load_dir`]) as a merged replay: every retained event,
    /// oldest first per PE, timestamps rebased to the earliest event across
    /// all dumps.
    pub fn render_replay(&self, dumps: &[FlightDump]) -> String {
        if dumps.is_empty() {
            return "flight replay: no flightrec-pe*.json dumps found\n".to_string();
        }
        let t0 = dumps
            .iter()
            .filter_map(FlightDump::first_cycles)
            .min()
            .unwrap_or(0);
        let mut out = String::from("┌ flight replay ┐\n");
        for dump in dumps {
            let dropped = dump.recorded.saturating_sub(dump.events.len() as u64);
            out.push_str(&format!(
                "pe{} — {} of {} events retained (ring capacity {}{})\n",
                dump.pe,
                dump.events.len(),
                dump.recorded,
                dump.capacity,
                if dropped > 0 {
                    format!(", {dropped} older dropped")
                } else {
                    String::new()
                },
            ));
            for ev in dump.replay() {
                match ev {
                    FlightEvent::Span {
                        phase,
                        begin_cycles,
                        end_cycles,
                    } => {
                        let site = (self.cfg.site_for)(*phase)
                            .map(|(file, line)| format!("  {file}:{line}"))
                            .unwrap_or_default();
                        out.push_str(&format!(
                            "  [{:>10.1}us] span {:<9} {:>9.1}us{site}\n",
                            fabsp_hwpc::cycles_to_us(begin_cycles.saturating_sub(t0)),
                            phase.label(),
                            fabsp_hwpc::cycles_to_us(end_cycles.saturating_sub(*begin_cycles)),
                        ));
                    }
                    FlightEvent::Note {
                        counter,
                        value,
                        at_cycles,
                    } => {
                        out.push_str(&format!(
                            "  [{:>10.1}us] note {} +{value}\n",
                            fabsp_hwpc::cycles_to_us(at_cycles.saturating_sub(t0)),
                            counter.name(),
                        ));
                    }
                }
            }
        }
        out.push_str("└───────────────┘\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actorprof::{Snapshot, TelemetryRegistry};
    use fabsp_telemetry::GovernorSample;
    use std::time::Duration;

    fn fixture_site(phase: Phase) -> Option<PhaseSite> {
        Some(match phase {
            Phase::Superstep => ("crates/actor/src/selector.rs", 100),
            Phase::Advance => ("crates/conveyors/src/convey.rs", 200),
            Phase::Quiet => ("crates/shmem/src/quiet.rs", 300),
            Phase::RelayHop => ("crates/conveyors/src/relay.rs", 400),
        })
    }

    fn frame_from(reg: &TelemetryRegistry, seq: u64, at: u64, prev: &Snapshot) -> Frame {
        let total = reg.snapshot();
        Frame {
            seq,
            at_cycles: at,
            delta: total.diff(prev),
            total,
            governor: None,
        }
    }

    #[test]
    fn renders_all_panels_without_color() {
        let reg = TelemetryRegistry::new(2);
        reg.pe(0).add(Counter::ActorSends, 30);
        reg.pe(1).add(Counter::ActorSends, 10);
        reg.pe(0).gauge_set(Gauge::ConveyorBufferedItems, 5);
        reg.pe(1).gauge_set(Gauge::ConveyorPullBacklog, 2);
        reg.pe(0).flight_span(Phase::Superstep, 1000, 9000);
        reg.pe(0).flight_span(Phase::Advance, 1000, 3000);
        let mut cockpit = Cockpit::new(CockpitConfig::plain(fixture_site));
        let s = cockpit.render(&frame_from(&reg, 0, 10_000, &Snapshot::default()));
        assert!(s.contains("tick    0"));
        assert!(s.contains("superstep 1"), "superstep from span counts:\n{s}");
        assert!(s.contains("items +40"), "first tick shows raw delta:\n{s}");
        assert!(s.contains("hottest phases (tick)"));
        assert!(
            s.contains("superstep") && s.contains("crates/actor/src/selector.rs:100"),
            "file:line attribution:\n{s}"
        );
        assert!(s.contains("pe0  *|"), "busiest PE flagged:\n{s}");
        assert!(s.contains("buf    5"), "gauges shown:\n{s}");
        assert!(s.contains("lag    2"), "backlog shown:\n{s}");
        assert!(s.contains("timeline  |"), "sparkline lane:\n{s}");
        assert!(!s.contains('\x1b'), "plain mode emits no ANSI");
        assert_eq!(cockpit.clear(), "");
    }

    #[test]
    fn second_frame_uses_true_rates_and_scrolls_timeline() {
        let reg = TelemetryRegistry::new(1);
        reg.pe(0).add(Counter::ActorSends, 100);
        let mut cockpit = Cockpit::new(CockpitConfig::plain(fixture_site));
        let first = frame_from(&reg, 0, fabsp_hwpc::NOMINAL_HZ, &Snapshot::default());
        cockpit.render(&first);
        reg.pe(0).add(Counter::ActorSends, 50);
        // one nominal second later: 50 sends → 50/s
        let s = cockpit.render(&frame_from(&reg, 1, 2 * fabsp_hwpc::NOMINAL_HZ, &first.total));
        assert!(s.contains("items 50/s"), "rate from at_cycles:\n{s}");
        let lane = s.lines().find(|l| l.starts_with("timeline")).unwrap();
        assert_eq!(
            lane.chars().filter(|c| SPARKS.contains(c)).count(),
            2,
            "two ticks of history:\n{s}"
        );
    }

    #[test]
    fn governor_line_shows_budget_verdict() {
        let reg = TelemetryRegistry::new(1);
        let mut frame = frame_from(&reg, 3, 100, &Snapshot::default());
        frame.governor = Some(GovernorSample {
            overhead_pct: 2.25,
            stride: 16,
            cadence: Duration::from_millis(8),
            within_budget: true,
        });
        let mut cockpit = Cockpit::new(CockpitConfig::plain(fixture_site));
        let s = cockpit.render(&frame);
        assert!(
            s.contains("governor  overhead 2.25% [ok]  stride 16  cadence 8ms"),
            "{s}"
        );
        frame.governor = Some(GovernorSample {
            overhead_pct: 9.5,
            stride: 128,
            cadence: Duration::from_millis(64),
            within_budget: false,
        });
        let s = cockpit.render(&frame);
        assert!(s.contains("[OVER]"), "{s}");
    }

    #[test]
    fn color_mode_emits_ansi_and_clear() {
        let reg = TelemetryRegistry::new(1);
        reg.pe(0).add(Counter::ActorSends, 1);
        let cfg = CockpitConfig {
            color: true,
            site_for: fixture_site,
            ..CockpitConfig::default()
        };
        let mut cockpit = Cockpit::new(cfg);
        let s = cockpit.render(&frame_from(&reg, 0, 100, &Snapshot::default()));
        assert!(s.contains("\x1b[1m"), "busiest PE bolded:\n{s:?}");
        assert_eq!(cockpit.clear(), "\x1b[2J\x1b[H");
    }

    #[test]
    fn replay_renders_dumps_rebased_and_attributed() {
        let ring = fabsp_telemetry::FlightRing::new(4);
        ring.span(Phase::Advance, 2_450_000, 4_900_000); // 1000us..2000us
        ring.note(Counter::ConveyorPushRetries, 3, 7_350_000);
        let dump = FlightDump::parse(&ring.to_json(1)).unwrap();
        let cockpit = Cockpit::new(CockpitConfig::plain(fixture_site));
        let s = cockpit.render_replay(&[dump]);
        assert!(s.contains("pe1 — 2 of 2 events retained"), "{s}");
        assert!(
            s.contains("span advance") && s.contains("crates/conveyors/src/convey.rs:200"),
            "{s}"
        );
        assert!(s.contains("[       0.0us]"), "rebased to first event:\n{s}");
        assert!(
            s.contains("[    2000.0us] note conveyor.push_retries +3"),
            "{s}"
        );
        assert!(
            cockpit.render_replay(&[]).contains("no flightrec"),
            "empty dir handled"
        );
    }
}
