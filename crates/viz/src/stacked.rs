//! Overall-profiling stacked bars (§III-D, Figs 12–13): per-PE
//! MAIN/COMM/PROC cycles, in absolute and relative form.

use actorprof_trace::OverallRecord;

use crate::palette;
use crate::scale::LinearScale;
use crate::svg::SvgDoc;

/// Which view to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackedMode {
    /// Absolute rdtsc cycles per PE.
    Absolute,
    /// Each PE's bar normalized to 100%.
    Relative,
}

/// Render per-PE overall records as a stacked bar chart.
pub fn render(records: &[OverallRecord], mode: StackedMode, title: &str) -> SvgDoc {
    let n = records.len().max(1);
    let bar_w = (560.0 / n as f64).clamp(8.0, 48.0);
    let plot_left = 70.0;
    let width = plot_left + n as f64 * bar_w + 120.0;
    let height = 300.0;
    let plot_top = 42.0;
    let plot_bottom = height - 44.0;
    let mut doc = SvgDoc::new(width, height);
    doc.text(
        plot_left + n as f64 * bar_w / 2.0,
        20.0,
        13.0,
        "middle",
        title,
    );

    let max_total = match mode {
        StackedMode::Absolute => records.iter().map(|r| r.t_total).max().unwrap_or(1) as f64,
        StackedMode::Relative => 1.0,
    };
    let y = LinearScale::new(0.0, max_total.max(1e-9), plot_bottom, plot_top);

    doc.line(plot_left, plot_top, plot_left, plot_bottom, "#444444", 1.0);
    for t in LinearScale::new(0.0, max_total.max(1e-9), 0.0, 1.0).ticks(5) {
        let py = y.map(t);
        doc.line(plot_left - 4.0, py, plot_left, py, "#444444", 1.0);
        let label = match mode {
            StackedMode::Absolute => format_cycles(t),
            StackedMode::Relative => format!("{:.0}%", t * 100.0),
        };
        doc.text(plot_left - 7.0, py + 3.0, 9.0, "end", &label);
    }
    doc.vtext(
        16.0,
        (plot_top + plot_bottom) / 2.0,
        11.0,
        match mode {
            StackedMode::Absolute => "rdtsc cycles",
            StackedMode::Relative => "fraction of T_TOTAL",
        },
    );

    for (i, r) in records.iter().enumerate() {
        let x = plot_left + i as f64 * bar_w;
        let total = r.t_total.max(1) as f64;
        let segs: [(u64, &str, &str); 3] = [
            (r.t_main, palette::MAIN_COLOR, "MAIN"),
            (r.t_comm(), palette::COMM_COLOR, "COMM"),
            (r.t_proc, palette::PROC_COLOR, "PROC"),
        ];
        let mut base = 0.0; // stacked height in data units
        for (cycles, color, name) in segs {
            let h_data = match mode {
                StackedMode::Absolute => cycles as f64,
                StackedMode::Relative => cycles as f64 / total,
            };
            let y0 = y.map(base + h_data);
            let y1 = y.map(base);
            doc.rect(
                x + 1.0,
                y0,
                bar_w - 2.0,
                (y1 - y0).max(0.0),
                color,
                Some(&format!(
                    "PE{} {name}: {} cycles ({:.1}%)",
                    r.pe,
                    cycles,
                    cycles as f64 / total * 100.0
                )),
            );
            base += h_data;
        }
        let label_step = if n <= 24 { 1 } else { n / 12 };
        if i % label_step.max(1) == 0 {
            doc.text(
                x + bar_w / 2.0,
                plot_bottom + 14.0,
                9.0,
                "middle",
                &r.pe.to_string(),
            );
        }
    }
    doc.text(
        plot_left + n as f64 * bar_w / 2.0,
        height - 8.0,
        11.0,
        "middle",
        "PE",
    );

    // legend
    let lx = plot_left + n as f64 * bar_w + 16.0;
    for (i, (color, name)) in [
        (palette::MAIN_COLOR, "T_MAIN"),
        (palette::COMM_COLOR, "T_COMM"),
        (palette::PROC_COLOR, "T_PROC"),
    ]
    .iter()
    .enumerate()
    {
        let ly = plot_top + i as f64 * 20.0;
        doc.rect(lx, ly, 12.0, 12.0, color, None);
        doc.text(lx + 16.0, ly + 10.0, 10.0, "start", name);
    }
    doc
}

fn format_cycles(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs() -> Vec<OverallRecord> {
        vec![
            OverallRecord {
                pe: 0,
                t_main: 50,
                t_proc: 30,
                t_total: 1000,
            },
            OverallRecord {
                pe: 1,
                t_main: 20,
                t_proc: 200,
                t_total: 500,
            },
        ]
    }

    #[test]
    fn absolute_mode_includes_all_regions() {
        let svg = render(&recs(), StackedMode::Absolute, "Overall").render();
        assert!(svg.contains("PE0 MAIN: 50 cycles"));
        assert!(svg.contains("PE0 COMM: 920 cycles"));
        assert!(svg.contains("PE1 PROC: 200 cycles"));
        assert!(svg.contains("T_MAIN"));
        assert!(svg.contains("rdtsc cycles"));
    }

    #[test]
    fn relative_mode_normalizes() {
        let svg = render(&recs(), StackedMode::Relative, "Relative").render();
        assert!(svg.contains("(5.0%)"), "MAIN of PE0 = 5%");
        assert!(svg.contains("(40.0%)"), "PROC of PE1 = 40%");
        assert!(svg.contains("100%") || svg.contains("fraction"));
    }

    #[test]
    fn cycle_formatting() {
        assert_eq!(format_cycles(500.0), "500");
        assert_eq!(format_cycles(2_000.0), "2k");
        assert_eq!(format_cycles(3_500_000.0), "3.5M");
        assert_eq!(format_cycles(7_200_000_000.0), "7.2G");
    }

    #[test]
    fn empty_records_render() {
        let svg = render(&[], StackedMode::Absolute, "x").render();
        assert!(svg.starts_with("<svg"));
    }
}
