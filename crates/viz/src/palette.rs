//! Color maps: a viridis-like sequential map for heatmaps and fixed
//! region colors for the stacked bars (matching Fig. 1's BLUE = MAIN,
//! RED = PROC convention).

/// Anchor points of the sequential colormap (dark purple → yellow,
/// perceptually close to viridis).
const ANCHORS: [(f64, [u8; 3]); 5] = [
    (0.00, [68, 1, 84]),
    (0.25, [59, 82, 139]),
    (0.50, [33, 145, 140]),
    (0.75, [94, 201, 98]),
    (1.00, [253, 231, 37]),
];

/// Map `t ∈ [0, 1]` to a hex color on the sequential scale. Values are
/// clamped.
pub fn sequential(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let mut lo = ANCHORS[0];
    let mut hi = ANCHORS[ANCHORS.len() - 1];
    for w in ANCHORS.windows(2) {
        if t >= w[0].0 && t <= w[1].0 {
            lo = w[0];
            hi = w[1];
            break;
        }
    }
    let span = (hi.0 - lo.0).max(1e-12);
    let f = (t - lo.0) / span;
    let mix = |a: u8, b: u8| -> u8 { (a as f64 + (b as f64 - a as f64) * f).round() as u8 };
    format!(
        "#{:02x}{:02x}{:02x}",
        mix(lo.1[0], hi.1[0]),
        mix(lo.1[1], hi.1[1]),
        mix(lo.1[2], hi.1[2])
    )
}

/// Color for cells with a zero count (distinct from the scale's minimum so
/// "no communication" is visually unambiguous).
pub const ZERO_CELL: &str = "#f4f4f4";

/// MAIN region color (the BLUE of Fig. 1).
pub const MAIN_COLOR: &str = "#3465a4";
/// PROC region color (the RED of Fig. 1).
pub const PROC_COLOR: &str = "#cc3333";
/// COMM region color.
pub const COMM_COLOR: &str = "#e0a335";

/// Categorical series colors (violin fills, multi-series bars).
pub const SERIES: [&str; 4] = ["#3465a4", "#cc3333", "#4e9a06", "#75507b"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_anchors() {
        assert_eq!(sequential(0.0), "#440154");
        assert_eq!(sequential(1.0), "#fde725");
    }

    #[test]
    fn out_of_range_clamps() {
        assert_eq!(sequential(-3.0), sequential(0.0));
        assert_eq!(sequential(9.0), sequential(1.0));
    }

    #[test]
    fn midpoints_interpolate() {
        assert_eq!(sequential(0.5), "#21918c");
        // halfway between the first two anchors
        let c = sequential(0.125);
        assert!(c.starts_with('#') && c.len() == 7);
        assert_ne!(c, sequential(0.0));
        assert_ne!(c, sequential(0.25));
    }

    #[test]
    fn all_outputs_are_hex() {
        for i in 0..=100 {
            let c = sequential(i as f64 / 100.0);
            assert_eq!(c.len(), 7);
            assert!(c.starts_with('#'));
            assert!(u32::from_str_radix(&c[1..], 16).is_ok());
        }
    }
}
