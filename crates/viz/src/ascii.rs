//! Terminal renderings — quick-look versions of every chart for CLI use
//! and for human-readable test output.

use actorprof::{Counter, Frame, Gauge, Hist, Matrix, Quartiles};
use actorprof_trace::OverallRecord;

use crate::scale::Norm;

const SHADES: [char; 7] = ['.', '░', '▒', '▓', '█', '█', '█'];

/// Render a matrix as an ASCII heatmap with totals row/column, log-scaled
/// shading. `.` marks zero cells.
pub fn heatmap(matrix: &Matrix, title: &str) -> String {
    let n = matrix.n();
    let max = matrix.max();
    let row_totals = matrix.row_totals();
    let col_totals = matrix.col_totals();
    let shade = |v: u64, max: u64| -> char {
        if v == 0 {
            SHADES[0]
        } else {
            let t = Norm::Log.apply(v, max);
            SHADES[1 + ((t * 3.999) as usize).min(3)]
        }
    };
    let mut out = format!("{title}\n     dst -> | total sends\n");
    for (src, total) in row_totals.iter().enumerate() {
        out.push_str(&format!("PE{src:>3} "));
        for dst in 0..n {
            out.push(shade(matrix.get(src, dst), max));
        }
        out.push_str(&format!(" | {total}\n"));
    }
    out.push_str("recv ");
    let tmax = col_totals.iter().copied().max().unwrap_or(0);
    for &total in &col_totals {
        out.push(shade(total, tmax));
    }
    out.push('\n');
    out.push_str(&format!(
        "recv totals: {}\n",
        col_totals
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out
}

/// Render quartile summaries as an ASCII "violin" (box-plot style).
pub fn violin(series: &[(String, Vec<u64>)], title: &str) -> String {
    let width = 48usize;
    let global_max = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let pos = |v: f64| -> usize { ((v / global_max) * (width - 1) as f64).round() as usize };
    let mut out = format!("{title}\n");
    for (label, values) in series {
        let q = Quartiles::of(values);
        let mut row = vec![' '; width];
        for cell in row.iter_mut().take(pos(q.max) + 1).skip(pos(q.min)) {
            *cell = '-';
        }
        for cell in row.iter_mut().take(pos(q.q3) + 1).skip(pos(q.q1)) {
            *cell = '=';
        }
        row[pos(q.median)] = 'O';
        row[pos(q.max)] = '!';
        out.push_str(&format!(
            "{label:>14} |{}| min {:.0} med {:.0} max {:.0}\n",
            row.iter().collect::<String>(),
            q.min,
            q.median,
            q.max
        ));
    }
    out
}

/// Render per-PE values as horizontal ASCII bars (optionally log-scaled).
pub fn bars(values: &[u64], title: &str, log: bool) -> String {
    let width = 50usize;
    let transform = |v: u64| -> f64 {
        if log {
            (1.0 + v as f64).log10()
        } else {
            v as f64
        }
    };
    let max_t = values.iter().map(|&v| transform(v)).fold(0.0f64, f64::max);
    let mut out = format!("{title}\n");
    for (pe, &v) in values.iter().enumerate() {
        let len = if max_t > 0.0 {
            ((transform(v) / max_t) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!("PE{pe:>3} {:<width$} {v}\n", "#".repeat(len)));
    }
    out
}

/// Render one live-telemetry [`Frame`] as a terminal dashboard: per-PE
/// send-rate bars for the tick, cumulative counter totals, and current
/// buffer-occupancy gauges. Meant to be re-drawn on every observer tick
/// (see `Profiler::observe`).
pub fn dashboard(frame: &Frame) -> String {
    let mut out = format!("== telemetry tick {} ==\n", frame.seq);
    out.push_str(&bars(
        &frame.delta.counter_per_pe(Counter::ActorSends),
        "sends this tick (per PE)",
        false,
    ));
    out.push_str("totals: ");
    let totals = [
        ("sends", Counter::ActorSends),
        ("yields", Counter::ActorYields),
        ("puts", Counter::ShmemPuts),
        ("quiets", Counter::ShmemQuiets),
        ("push-retries", Counter::ConveyorPushRetries),
        ("relay-parks", Counter::ConveyorRelayParks),
        ("forced-parks", Counter::ConveyorForcedParks),
        ("net-retries", Counter::NetRetries),
        ("restarts", Counter::Restarts),
    ];
    let summary = totals
        .iter()
        .map(|(label, c)| format!("{label} {}", frame.total.counter_total(*c)))
        .collect::<Vec<_>>()
        .join("  ");
    out.push_str(&summary);
    out.push('\n');
    out.push_str(&format!(
        "now: buffered {}  pull-backlog {}  advances observed {}  checkpoints {}\n",
        frame.total.gauge_total(Gauge::ConveyorBufferedItems),
        frame.total.gauge_total(Gauge::ConveyorPullBacklog),
        frame.total.hist_count(Hist::AdvanceCycles),
        frame.total.hist_count(Hist::CheckpointCycles),
    ));
    out
}

/// Render overall records as per-PE MAIN/COMM/PROC proportion bars.
pub fn stacked(records: &[OverallRecord], title: &str) -> String {
    let width = 50usize;
    let mut out = format!("{title}  (M=MAIN C=COMM P=PROC)\n");
    for r in records {
        let total = r.t_total.max(1) as f64;
        let m = ((r.t_main as f64 / total) * width as f64).round() as usize;
        let p = ((r.t_proc as f64 / total) * width as f64).round() as usize;
        let c = width.saturating_sub(m + p);
        out.push_str(&format!(
            "PE{:>3} {}{}{} total {} cycles\n",
            r.pe,
            "M".repeat(m),
            "C".repeat(c),
            "P".repeat(p),
            r.t_total
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shows_totals_and_zeros() {
        let mut m = Matrix::zeros(2);
        m.set(0, 1, 10);
        let s = heatmap(&m, "hm");
        assert!(s.contains("hm"));
        assert!(s.contains("| 10"), "row total missing:\n{s}");
        assert!(s.contains("recv totals: 0 10"));
        assert!(s.contains('.'), "zero cells marked");
    }

    #[test]
    fn violin_marks_median_and_max() {
        let s = violin(&[("sends".into(), vec![1, 5, 9])], "v");
        assert!(s.contains('O'));
        assert!(s.contains('!'));
        assert!(s.contains("med 5"));
    }

    #[test]
    fn bars_scale_to_max() {
        let s = bars(&[10, 5, 0], "b", false);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[1]), 50);
        assert_eq!(count(lines[2]), 25);
        assert_eq!(count(lines[3]), 0);
    }

    #[test]
    fn stacked_proportions() {
        let r = OverallRecord {
            pe: 0,
            t_main: 25,
            t_proc: 25,
            t_total: 100,
        };
        let s = stacked(&[r], "o");
        let line = s.lines().nth(1).unwrap();
        let bar = &line["PE  0 ".len()..]; // skip the "PE  0 " prefix
        assert_eq!(bar.matches('M').count(), 13); // 25% of 50 rounded
        assert_eq!(bar.matches('P').count(), 13);
        assert!(bar.matches('C').count() >= 24);
    }

    #[test]
    fn dashboard_renders_frame_counters() {
        let reg = actorprof::TelemetryRegistry::new(2);
        reg.pe(0).add(Counter::ActorSends, 8);
        reg.pe(1).add(Counter::ActorSends, 4);
        reg.pe(0).gauge_set(Gauge::ConveyorBufferedItems, 3);
        reg.pe(1).add(Counter::NetRetries, 5);
        reg.pe(0).add(Counter::Restarts, 1);
        reg.pe(0).observe(actorprof::Hist::CheckpointCycles, 900);
        let total = reg.snapshot();
        let frame = Frame {
            seq: 2,
            delta: total.diff(&actorprof::Snapshot::default()),
            total,
        };
        let s = dashboard(&frame);
        assert!(s.contains("tick 2"));
        assert!(s.contains("sends 12"), "cumulative total rendered:\n{s}");
        assert!(s.contains("buffered 3"));
        assert!(s.contains("net-retries 5"), "recovery totals rendered:\n{s}");
        assert!(s.contains("restarts 1"));
        assert!(s.contains("checkpoints 1"), "checkpoint count rendered:\n{s}");
        assert!(s.lines().any(|l| l.starts_with("PE  0") && l.contains('#')));
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(bars(&[], "b", true).contains('b'));
        assert!(stacked(&[], "o").contains('o'));
        assert!(violin(&[], "v").contains('v'));
    }
}
