//! Terminal renderings — quick-look versions of every chart for CLI use
//! and for human-readable test output.

use actorprof::{Counter, Frame, Gauge, Hist, Matrix, Quartiles};
use actorprof_trace::OverallRecord;

use crate::scale::Norm;

const SHADES: [char; 7] = ['.', '░', '▒', '▓', '█', '█', '█'];

/// Render a matrix as an ASCII heatmap with totals row/column, log-scaled
/// shading. `.` marks zero cells.
pub fn heatmap(matrix: &Matrix, title: &str) -> String {
    let n = matrix.n();
    let max = matrix.max();
    let row_totals = matrix.row_totals();
    let col_totals = matrix.col_totals();
    let shade = |v: u64, max: u64| -> char {
        if v == 0 {
            SHADES[0]
        } else {
            let t = Norm::Log.apply(v, max);
            SHADES[1 + ((t * 3.999) as usize).min(3)]
        }
    };
    let mut out = format!("{title}\n     dst -> | total sends\n");
    for (src, total) in row_totals.iter().enumerate() {
        out.push_str(&format!("PE{src:>3} "));
        for dst in 0..n {
            out.push(shade(matrix.get(src, dst), max));
        }
        out.push_str(&format!(" | {total}\n"));
    }
    out.push_str("recv ");
    let tmax = col_totals.iter().copied().max().unwrap_or(0);
    for &total in &col_totals {
        out.push(shade(total, tmax));
    }
    out.push('\n');
    out.push_str(&format!(
        "recv totals: {}\n",
        col_totals
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out
}

/// Render quartile summaries as an ASCII "violin" (box-plot style).
pub fn violin(series: &[(String, Vec<u64>)], title: &str) -> String {
    let width = 48usize;
    let global_max = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let pos = |v: f64| -> usize { ((v / global_max) * (width - 1) as f64).round() as usize };
    let mut out = format!("{title}\n");
    for (label, values) in series {
        let q = Quartiles::of(values);
        let mut row = vec![' '; width];
        for cell in row.iter_mut().take(pos(q.max) + 1).skip(pos(q.min)) {
            *cell = '-';
        }
        for cell in row.iter_mut().take(pos(q.q3) + 1).skip(pos(q.q1)) {
            *cell = '=';
        }
        row[pos(q.median)] = 'O';
        row[pos(q.max)] = '!';
        out.push_str(&format!(
            "{label:>14} |{}| min {:.0} med {:.0} max {:.0}\n",
            row.iter().collect::<String>(),
            q.min,
            q.median,
            q.max
        ));
    }
    out
}

/// Render per-PE values as horizontal ASCII bars (optionally log-scaled).
pub fn bars(values: &[u64], title: &str, log: bool) -> String {
    let width = 50usize;
    let transform = |v: u64| -> f64 {
        if log {
            (1.0 + v as f64).log10()
        } else {
            v as f64
        }
    };
    let max_t = values.iter().map(|&v| transform(v)).fold(0.0f64, f64::max);
    let mut out = format!("{title}\n");
    for (pe, &v) in values.iter().enumerate() {
        let len = if max_t > 0.0 {
            ((transform(v) / max_t) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!("PE{pe:>3} {:<width$} {v}\n", "#".repeat(len)));
    }
    out
}

/// Render one live-telemetry [`Frame`] as a terminal dashboard: per-PE
/// send-rate bars for the tick, per-tick counter deltas (as rates when the
/// previous frame's stamp is known), cumulative counter totals, and
/// current buffer-occupancy gauges. Meant to be re-drawn on every observer
/// tick (see `Profiler::observe`).
pub fn dashboard(frame: &Frame) -> String {
    dashboard_since(frame, None)
}

/// Like [`dashboard`], with the previous frame's `at_cycles` stamp so the
/// tick line can show true per-second rates instead of raw deltas. Pass
/// `Some(prev.at_cycles)` when redrawing on consecutive frames.
pub fn dashboard_since(frame: &Frame, prev_at_cycles: Option<u64>) -> String {
    let mut out = format!("== telemetry tick {} ==\n", frame.seq);
    out.push_str(&bars(
        &frame.delta.counter_per_pe(Counter::ActorSends),
        "sends this tick (per PE)",
        false,
    ));
    // The delta snapshot holds what happened *this interval*; rendering it
    // (not just the running totals) is what makes stalls visible live.
    let ticked = [
        ("sends", Counter::ActorSends),
        ("puts", Counter::ShmemPuts),
        ("push-retries", Counter::ConveyorPushRetries),
        ("net-retries", Counter::NetRetries),
    ];
    let secs = prev_at_cycles
        .map(|prev| fabsp_hwpc::cycles_to_secs(frame.at_cycles.saturating_sub(prev)));
    match secs {
        Some(secs) if secs > 0.0 => {
            let line = ticked
                .iter()
                .map(|(label, c)| {
                    format!(
                        "{label} {:.0}/s",
                        frame.delta.counter_total(*c) as f64 / secs
                    )
                })
                .collect::<Vec<_>>()
                .join("  ");
            out.push_str(&format!("rates: {line}\n"));
        }
        _ => {
            let line = ticked
                .iter()
                .map(|(label, c)| format!("{label} +{}", frame.delta.counter_total(*c)))
                .collect::<Vec<_>>()
                .join("  ");
            out.push_str(&format!("tick:  {line}\n"));
        }
    }
    out.push_str("totals: ");
    let totals = [
        ("sends", Counter::ActorSends),
        ("yields", Counter::ActorYields),
        ("puts", Counter::ShmemPuts),
        ("quiets", Counter::ShmemQuiets),
        ("push-retries", Counter::ConveyorPushRetries),
        ("relay-parks", Counter::ConveyorRelayParks),
        ("forced-parks", Counter::ConveyorForcedParks),
        ("net-retries", Counter::NetRetries),
        ("restarts", Counter::Restarts),
    ];
    let summary = totals
        .iter()
        .map(|(label, c)| format!("{label} {}", frame.total.counter_total(*c)))
        .collect::<Vec<_>>()
        .join("  ");
    out.push_str(&summary);
    out.push('\n');
    out.push_str(&format!(
        "now: buffered {}  pull-backlog {}  advances observed {}  checkpoints {}\n",
        frame.total.gauge_total(Gauge::ConveyorBufferedItems),
        frame.total.gauge_total(Gauge::ConveyorPullBacklog),
        frame.total.hist_count(Hist::AdvanceCycles),
        frame.total.hist_count(Hist::CheckpointCycles),
    ));
    out
}

/// Render overall records as per-PE MAIN/COMM/PROC proportion bars.
pub fn stacked(records: &[OverallRecord], title: &str) -> String {
    let width = 50usize;
    let mut out = format!("{title}  (M=MAIN C=COMM P=PROC)\n");
    for r in records {
        let total = r.t_total.max(1) as f64;
        let m = ((r.t_main as f64 / total) * width as f64).round() as usize;
        let p = ((r.t_proc as f64 / total) * width as f64).round() as usize;
        let c = width.saturating_sub(m + p);
        out.push_str(&format!(
            "PE{:>3} {}{}{} total {} cycles\n",
            r.pe,
            "M".repeat(m),
            "C".repeat(c),
            "P".repeat(p),
            r.t_total
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shows_totals_and_zeros() {
        let mut m = Matrix::zeros(2);
        m.set(0, 1, 10);
        let s = heatmap(&m, "hm");
        assert!(s.contains("hm"));
        assert!(s.contains("| 10"), "row total missing:\n{s}");
        assert!(s.contains("recv totals: 0 10"));
        assert!(s.contains('.'), "zero cells marked");
    }

    #[test]
    fn violin_marks_median_and_max() {
        let s = violin(&[("sends".into(), vec![1, 5, 9])], "v");
        assert!(s.contains('O'));
        assert!(s.contains('!'));
        assert!(s.contains("med 5"));
    }

    #[test]
    fn bars_scale_to_max() {
        let s = bars(&[10, 5, 0], "b", false);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[1]), 50);
        assert_eq!(count(lines[2]), 25);
        assert_eq!(count(lines[3]), 0);
    }

    #[test]
    fn stacked_proportions() {
        let r = OverallRecord {
            pe: 0,
            t_main: 25,
            t_proc: 25,
            t_total: 100,
        };
        let s = stacked(&[r], "o");
        let line = s.lines().nth(1).unwrap();
        let bar = &line["PE  0 ".len()..]; // skip the "PE  0 " prefix
        assert_eq!(bar.matches('M').count(), 13); // 25% of 50 rounded
        assert_eq!(bar.matches('P').count(), 13);
        assert!(bar.matches('C').count() >= 24);
    }

    #[test]
    fn dashboard_renders_frame_counters() {
        let reg = actorprof::TelemetryRegistry::new(2);
        reg.pe(0).add(Counter::ActorSends, 8);
        reg.pe(1).add(Counter::ActorSends, 4);
        reg.pe(0).gauge_set(Gauge::ConveyorBufferedItems, 3);
        reg.pe(1).add(Counter::NetRetries, 5);
        reg.pe(0).add(Counter::Restarts, 1);
        reg.pe(0).observe(actorprof::Hist::CheckpointCycles, 900);
        let total = reg.snapshot();
        let frame = Frame {
            seq: 2,
            at_cycles: 0,
            delta: total.diff(&actorprof::Snapshot::default()),
            total,
            governor: None,
        };
        let s = dashboard(&frame);
        assert!(s.contains("tick 2"));
        assert!(s.contains("tick:  sends +12"), "delta line rendered:\n{s}");
        assert!(s.contains("sends 12"), "cumulative total rendered:\n{s}");
        assert!(s.contains("buffered 3"));
        assert!(s.contains("net-retries 5"), "recovery totals rendered:\n{s}");
        assert!(s.contains("restarts 1"));
        assert!(s.contains("checkpoints 1"), "checkpoint count rendered:\n{s}");
        assert!(s.lines().any(|l| l.starts_with("PE  0") && l.contains('#')));
    }

    #[test]
    fn dashboard_rates_use_the_frame_interval() {
        let reg = actorprof::TelemetryRegistry::new(1);
        reg.pe(0).add(Counter::ActorSends, 10);
        let first = reg.snapshot();
        reg.pe(0).add(Counter::ActorSends, 490);
        let total = reg.snapshot();
        // Two frames half a (nominal) second apart: 490 sends in the
        // interval render as a 980/s rate, not as the 500 cumulative.
        let half_sec = fabsp_hwpc::NOMINAL_HZ / 2;
        let frame = Frame {
            seq: 1,
            at_cycles: 3 * half_sec,
            delta: total.diff(&first),
            total,
            governor: None,
        };
        let s = dashboard_since(&frame, Some(2 * half_sec));
        assert!(s.contains("rates: sends 980/s"), "per-interval rate:\n{s}");
        assert!(s.contains("sends 500"), "totals still cumulative:\n{s}");
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(bars(&[], "b", true).contains('b'));
        assert!(stacked(&[], "o").contains('o'));
        assert!(violin(&[], "v").contains('v'));
    }
}
