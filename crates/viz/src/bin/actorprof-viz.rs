//! The ActorProf visualization CLI — the Rust analogue of the paper's
//! `logical.py` / `physical.py` / `papi.py` / `Overall.py` scripts, with
//! the run-time flags of §III:
//!
//! ```text
//! actorprof-viz -l  <trace-dir> <num_PEs>   # logical-trace heatmap
//! actorprof-viz -p  <trace-dir> <num_PEs>   # physical-trace heatmap
//! actorprof-viz -lp <trace-dir> <num_PEs>   # PAPI bar graphs
//! actorprof-viz -s  <trace-dir> <num_PEs>   # overall stacked bars
//! ```
//!
//! SVGs are written next to the traces; an ASCII quick-look is printed.

use std::path::Path;
use std::process::ExitCode;

use actorprof::{reader, Matrix};
use actorprof_viz::{ascii, bar, heatmap, stacked, violin};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("actorprof-viz: {e}");
            eprintln!(
                "usage: actorprof-viz [-l|-p|-lp|-s] <trace-dir> <num_PEs>\n\
                 \x20 -l   logical trace heatmap + violin\n\
                 \x20 -p   physical trace heatmap + violin\n\
                 \x20 -lp  PAPI counter bar graphs\n\
                 \x20 -s   overall stacked bar graph"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let [flag, dir, n_pes] = args else {
        return Err("expected exactly three arguments".into());
    };
    let dir = Path::new(dir);
    let n_pes: usize = n_pes.parse().map_err(|_| "num_PEs must be an integer")?;
    if n_pes == 0 {
        return Err("num_PEs must be positive".into());
    }
    match flag.as_str() {
        "-l" => render_logical(dir, n_pes),
        "-p" => render_physical(dir, n_pes),
        "-lp" => render_papi(dir, n_pes),
        "-s" => render_overall(dir),
        other => Err(format!("unknown flag {other}")),
    }
}

fn render_logical(dir: &Path, n_pes: usize) -> Result<(), String> {
    let m = reader::read_logical_matrix(dir, n_pes).map_err(|e| e.to_string())?;
    let doc = heatmap::render(&m, &heatmap::HeatmapSpec::titled("Logical trace (sends)"));
    let out = dir.join("logical_heatmap.svg");
    doc.save(&out).map_err(|e| e.to_string())?;
    let v = violin::render(
        &[
            violin::ViolinSeries::new("sends", m.row_totals()),
            violin::ViolinSeries::new("recvs", m.col_totals()),
        ],
        "Logical trace quartiles",
    );
    let vout = dir.join("logical_violin.svg");
    v.save(&vout).map_err(|e| e.to_string())?;
    print!("{}", ascii::heatmap(&m, "Logical trace"));
    println!("wrote {} and {}", out.display(), vout.display());
    Ok(())
}

fn render_physical(dir: &Path, n_pes: usize) -> Result<(), String> {
    let records = reader::read_physical(&dir.join("physical.txt")).map_err(|e| e.to_string())?;
    let mut m = Matrix::zeros(n_pes);
    for r in &records {
        if r.send_type != actorprof_trace::SendType::NonblockProgress
            && (r.src_pe as usize) < n_pes
            && (r.dst_pe as usize) < n_pes
        {
            m.add(r.src_pe as usize, r.dst_pe as usize, 1);
        }
    }
    let doc = heatmap::render(&m, &heatmap::HeatmapSpec::titled("Physical trace (buffers)"));
    let out = dir.join("physical_heatmap.svg");
    doc.save(&out).map_err(|e| e.to_string())?;
    let v = violin::render(
        &[
            violin::ViolinSeries::new("buffer sends", m.row_totals()),
            violin::ViolinSeries::new("buffer recvs", m.col_totals()),
        ],
        "Physical trace quartiles",
    );
    let vout = dir.join("physical_violin.svg");
    v.save(&vout).map_err(|e| e.to_string())?;
    print!("{}", ascii::heatmap(&m, "Physical trace"));
    println!("wrote {} and {}", out.display(), vout.display());
    Ok(())
}

fn render_papi(dir: &Path, n_pes: usize) -> Result<(), String> {
    // Sum each counter over every PE's PEi_PAPI.csv lines; one bar chart
    // per event (up to the four the PAPI limit allows in one run).
    let mut event_names: Vec<String> = Vec::new();
    let mut per_event_per_pe: Vec<Vec<u64>> = Vec::new();
    for pe in 0..n_pes {
        let path = dir.join(format!("PE{pe}_PAPI.csv"));
        if !path.exists() {
            continue;
        }
        let (events, records) = reader::read_papi(&path).map_err(|e| e.to_string())?;
        if event_names.is_empty() {
            event_names = events;
            per_event_per_pe = vec![vec![0; n_pes]; event_names.len()];
        }
        for r in &records {
            for (e, &v) in r.counters.iter().enumerate() {
                per_event_per_pe[e][pe] += v;
            }
        }
    }
    if event_names.is_empty() {
        return Err("no PEi_PAPI.csv files found".into());
    }
    for (e, name) in event_names.iter().enumerate() {
        let spec = bar::BarSpec {
            title: format!("{name} vs PE"),
            y_label: name.clone(),
            log: true,
            ..Default::default()
        };
        let doc = bar::render(&per_event_per_pe[e], &spec);
        let out = dir.join(format!("papi_{}.svg", name.to_lowercase()));
        doc.save(&out).map_err(|err| err.to_string())?;
        print!("{}", ascii::bars(&per_event_per_pe[e], name, true));
        println!("wrote {}", out.display());
    }
    Ok(())
}

fn render_overall(dir: &Path) -> Result<(), String> {
    let records = reader::read_overall(&dir.join("overall.txt")).map_err(|e| e.to_string())?;
    for (mode, name) in [
        (stacked::StackedMode::Absolute, "overall_absolute.svg"),
        (stacked::StackedMode::Relative, "overall_relative.svg"),
    ] {
        let doc = stacked::render(&records, mode, "Overall profiling (MAIN/COMM/PROC)");
        doc.save(&dir.join(name)).map_err(|e| e.to_string())?;
        println!("wrote {}", dir.join(name).display());
    }
    print!("{}", ascii::stacked(&records, "Overall profiling"));
    Ok(())
}
