//! # fabsp-testkit — deterministic schedule exploration and fault injection
//!
//! The FA-BSP substrate (`fabsp-shmem` + `fabsp-conveyors`) is concurrent:
//! under the OS scheduler a test exercises one arbitrary interleaving per
//! run, and a bug that needs a particular ordering of puts, quiets and
//! barrier arrivals may hide for thousands of runs. This crate turns the
//! substrate's [`Scheduler`] hook into a test harness:
//!
//! - **Schedule exploration** — [`explore_schedules`] runs one SPMD closure
//!   under many seeded [`SchedSpec::random_walk`] schedules; each `u64`
//!   seed names (and replays, exactly) one total order of observable
//!   substrate events. [`assert_schedule_independent`] additionally checks
//!   every schedule produces the same per-PE results as a free-running
//!   baseline.
//! - **Fault injection** — any [`FaultSpec`] (e.g.
//!   [`FaultSpec::nbi_shuffle`], which delivers non-blocking puts in a
//!   hostile-but-legal order at each `quiet`) can be combined with every
//!   explored schedule.
//! - **Invariant checkers** — [`MsgLog`] records push/pull events and
//!   [`MsgLog::check`] verifies per-`(src, dst)` FIFO delivery and message
//!   conservation; [`check_conveyor_quiescent`] verifies pushed == pulled
//!   with nothing in flight at quiescence;
//!   [`assert_nbi_invisible_until_quiet`] is a two-PE litmus proving no
//!   byte of a non-blocking put is visible before the issuing PE's
//!   `quiet`. **Termination** is checked by construction: the random-walk
//!   scheduler's step budget ([`DEFAULT_STEP_BUDGET`]) turns any deadlock
//!   or livelock into a deterministic [`ShmemError::PePanicked`] instead
//!   of a hang.
//! - **App conformance matrix** — [`matrix`] defines the generic
//!   [`matrix::AppSpec`]/[`matrix::MatrixParams`]/[`matrix::MatrixRun`]
//!   contract the workload registry (`fabsp_apps::registry()`) implements,
//!   so the schedule-fuzz, crash-recovery, and race-detect suites iterate
//!   over every bundled app from one list.
//!
//! ## Example
//!
//! ```
//! use fabsp_testkit::{assert_schedule_independent, FaultSpec, Grid};
//!
//! // A ring rotation must produce the same answer under every schedule.
//! let grid = Grid::single_node(3).unwrap();
//! let results = assert_schedule_independent(grid, 0..4, FaultSpec::NONE, |pe| {
//!     let sym = pe.alloc_sym::<u64>(1);
//!     let dst = (pe.rank() + 1) % pe.n_pes();
//!     sym.put(pe, dst, 0, &[pe.rank() as u64]).unwrap();
//!     pe.barrier_all();
//!     sym.read_local(pe, |v| v[0])
//! });
//! assert_eq!(results, vec![2, 0, 1]);
//! ```

// Zero unsafe today; keep it that way by construction.
#![forbid(unsafe_code)]

pub mod matrix;

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

pub use fabsp_conveyors::{Conveyor, ConveyorOptions, ConveyorStats};
pub use fabsp_shmem::sched::DEFAULT_STEP_BUDGET;
pub use fabsp_shmem::{
    spmd, Checkpoint, FaultSpec, Grid, Harness, KillRecord, Pe, RecoveryLog, RecoverySpec,
    SchedPoint, SchedSpec, Scheduler, ShmemError,
};

/// One explored schedule: the seed that names it and every PE's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRun<R> {
    /// Seed of the random-walk schedule.
    pub seed: u64,
    /// Rank-ordered results of the SPMD closure.
    pub results: Vec<R>,
}

/// A schedule that failed to complete: the seed replays it exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFailure {
    /// The failing seed (`None` for the OS-scheduled baseline).
    pub seed: Option<u64>,
    /// The underlying SPMD error (a panic on some PE, usually).
    pub error: ShmemError,
}

impl fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seed {
            Some(seed) => write!(f, "schedule seed {seed}: {}", self.error),
            None => write!(f, "OS-scheduled baseline: {}", self.error),
        }
    }
}

impl std::error::Error for ScheduleFailure {}

/// Run `f` once per seed under a seeded random-walk schedule (plus the
/// given faults), collecting each schedule's rank-ordered results.
///
/// The first failing schedule aborts the sweep and reports its seed —
/// re-running that single seed reproduces the failure exactly. A schedule
/// that exceeds the step budget (deadlock/livelock) fails with
/// [`ShmemError::PePanicked`]; the budget is the termination checker.
pub fn explore_schedules<R, F>(
    grid: Grid,
    seeds: impl IntoIterator<Item = u64>,
    faults: FaultSpec,
    f: F,
) -> Result<Vec<ScheduleRun<R>>, ScheduleFailure>
where
    R: Send,
    F: Fn(&Pe) -> R + Sync,
{
    let mut runs = Vec::new();
    for seed in seeds {
        let harness = Harness::new(grid)
            .sched(SchedSpec::random_walk(seed))
            .faults(faults);
        let results = spmd::run(harness, &f).map_err(|error| ScheduleFailure {
            seed: Some(seed),
            error,
        })?;
        runs.push(ScheduleRun { seed, results });
    }
    Ok(runs)
}

/// Assert that `f`'s per-PE results are identical under a free-running
/// (OS-scheduled, fault-free) baseline and under every seeded schedule
/// with the given faults. Returns the baseline results.
///
/// # Panics
/// Panics if any run fails or any schedule's results diverge from the
/// baseline; the message names the seed, which replays the divergence.
pub fn assert_schedule_independent<R, F>(
    grid: Grid,
    seeds: impl IntoIterator<Item = u64>,
    faults: FaultSpec,
    f: F,
) -> Vec<R>
where
    R: Send + PartialEq + fmt::Debug,
    F: Fn(&Pe) -> R + Sync,
{
    let baseline = spmd::run(grid, &f)
        .unwrap_or_else(|error| panic!("{}", ScheduleFailure { seed: None, error }));
    let runs = explore_schedules(grid, seeds, faults, &f).unwrap_or_else(|e| panic!("{e}"));
    for run in &runs {
        assert_eq!(
            run.results, baseline,
            "schedule seed {} diverged from the OS-scheduled baseline",
            run.seed
        );
    }
    baseline
}

/// A violated delivery invariant, reported by [`MsgLog::check`] or
/// [`check_conveyor_quiescent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The n-th pull on a `(src, dst)` pair did not carry the n-th pushed
    /// tag: out-of-order delivery, or a pull with no matching push
    /// (`expected: None`).
    Fifo {
        src: usize,
        dst: usize,
        /// Zero-based delivery index on the pair.
        index: u64,
        /// Tag that FIFO order demanded (`None`: nothing was in flight).
        expected: Option<u64>,
        /// Tag actually pulled.
        got: u64,
    },
    /// Messages still in flight at quiescence: pushes without pulls.
    InFlight {
        src: usize,
        dst: usize,
        undelivered: usize,
    },
    /// World-wide conveyor counters disagree: `pushed != pulled`.
    ConveyorImbalance { pushed: u64, pulled: u64 },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::Fifo {
                src,
                dst,
                index,
                expected,
                got,
            } => write!(
                f,
                "FIFO violation on {src}->{dst}: pull #{index} got tag {got}, expected {expected:?}"
            ),
            InvariantViolation::InFlight {
                src,
                dst,
                undelivered,
            } => write!(
                f,
                "conservation violation on {src}->{dst}: {undelivered} pushed but never pulled"
            ),
            InvariantViolation::ConveyorImbalance { pushed, pulled } => write!(
                f,
                "conveyor imbalance at quiescence: {pushed} pushed != {pulled} pulled"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Summary of a clean [`MsgLog::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgLogSummary {
    /// Messages delivered (pushed and pulled).
    pub delivered: u64,
    /// Distinct `(src, dst)` pairs that carried traffic.
    pub pairs: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgEvent {
    Push { src: usize, dst: usize, tag: u64 },
    Pull { src: usize, dst: usize, tag: u64 },
}

/// A shared push/pull event log for delivery-invariant checking.
///
/// Test closures record a [`push`](MsgLog::push) when a message enters the
/// substrate and a [`pull`](MsgLog::pull) when the destination hands it to
/// the application; [`check`](MsgLog::check) then replays the log and
/// verifies, per `(src, dst)` pair, **FIFO delivery** (the n-th pull
/// carries the n-th pushed tag — the ordering Conveyors guarantees and
/// algorithms rely on, per the paper's note on self-sends) and **message
/// conservation** (every push is pulled exactly once; nothing in flight at
/// the end).
///
/// Events from different PEs interleave arbitrarily in the log, but each
/// PE appends its own events in program order, which is all the per-pair
/// invariants need: pushes on a pair are appended only by `src`, pulls
/// only by `dst`.
#[derive(Debug, Default)]
pub struct MsgLog {
    events: Mutex<Vec<MsgEvent>>,
}

impl MsgLog {
    /// An empty log.
    pub fn new() -> MsgLog {
        MsgLog::default()
    }

    /// Record a message entering the substrate at `src`, bound for `dst`.
    /// `tag` identifies the message (e.g. its payload or a sequence
    /// number); FIFO checking compares tags, so tags should be unique per
    /// pair unless duplicates are genuinely indistinguishable.
    pub fn push(&self, src: usize, dst: usize, tag: u64) {
        self.events
            .lock()
            .unwrap()
            .push(MsgEvent::Push { src, dst, tag });
    }

    /// Record a message handed to the application at `dst`.
    pub fn pull(&self, src: usize, dst: usize, tag: u64) {
        self.events
            .lock()
            .unwrap()
            .push(MsgEvent::Pull { src, dst, tag });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replay the log and verify FIFO delivery and conservation on every
    /// `(src, dst)` pair. Call after the run has quiesced (all PEs
    /// returned); a push still in flight is a conservation violation.
    pub fn check(&self) -> Result<MsgLogSummary, InvariantViolation> {
        let events = self.events.lock().unwrap();
        let mut in_flight: HashMap<(usize, usize), VecDeque<u64>> = HashMap::new();
        let mut delivered_per_pair: HashMap<(usize, usize), u64> = HashMap::new();
        let mut delivered = 0u64;
        for event in events.iter() {
            match *event {
                MsgEvent::Push { src, dst, tag } => {
                    in_flight.entry((src, dst)).or_default().push_back(tag);
                }
                MsgEvent::Pull { src, dst, tag } => {
                    let index = delivered_per_pair.entry((src, dst)).or_insert(0);
                    let expected = in_flight.entry((src, dst)).or_default().pop_front();
                    if expected != Some(tag) {
                        return Err(InvariantViolation::Fifo {
                            src,
                            dst,
                            index: *index,
                            expected,
                            got: tag,
                        });
                    }
                    *index += 1;
                    delivered += 1;
                }
            }
        }
        for ((src, dst), queue) in &in_flight {
            if !queue.is_empty() {
                return Err(InvariantViolation::InFlight {
                    src: *src,
                    dst: *dst,
                    undelivered: queue.len(),
                });
            }
        }
        Ok(MsgLogSummary {
            delivered,
            pairs: delivered_per_pair.len(),
        })
    }
}

/// Check world-wide conveyor quiescence: every pushed item was pulled.
///
/// Pass each PE's [`Conveyor::stats`] taken after the conveyor terminated
/// (`advance` returned `false` everywhere); an imbalance means items were
/// lost or duplicated in aggregation buffers, relays, or non-blocking
/// sends.
pub fn check_conveyor_quiescent(stats: &[ConveyorStats]) -> Result<(), InvariantViolation> {
    let pushed: u64 = stats.iter().map(|s| s.pushed).sum();
    let pulled: u64 = stats.iter().map(|s| s.pulled).sum();
    if pushed != pulled {
        return Err(InvariantViolation::ConveyorImbalance { pushed, pulled });
    }
    Ok(())
}

/// Litmus test: no byte of a non-blocking put is visible at the target
/// before the issuing PE's `quiet`, and every byte is visible after —
/// under every given schedule and the given faults.
///
/// Two PEs on two nodes run a flag protocol: PE 0 issues `put_nbi`, then
/// signals "staged"; PE 1 reads the target location **while PE 0 is
/// provably pre-`quiet`** (PE 0 blocks on PE 1's acknowledgement before
/// calling `quiet`) and must see the old value; after PE 0 signals
/// "flushed", PE 1 must see the put value. This is the property that makes
/// `shmem_putmem_nbi` invisible to conventional profilers (paper §V-B) —
/// and the one [`FaultSpec::nbi_shuffle`] must not break, since shuffling
/// is only legal *within* the pending set of one `quiet`.
///
/// # Panics
/// Panics naming the violating seed.
pub fn assert_nbi_invisible_until_quiet(seeds: impl IntoIterator<Item = u64>, faults: FaultSpec) {
    const MAGIC: u64 = 0xF00D_FACE;
    const STAGED: usize = 0; // PE1's flag: the put is staged
    const FLUSHED: usize = 1; // PE1's flag: quiet has completed
    let grid = Grid::new(2, 1).expect("2x1 grid");
    for seed in seeds {
        let harness = Harness::new(grid)
            .sched(SchedSpec::random_walk(seed))
            .faults(faults);
        let results = spmd::run(harness, |pe| {
            let data = pe.alloc_sym::<u64>(1);
            let flags = pe.alloc_sym_atomic(2);
            if pe.rank() == 0 {
                data.put_nbi(pe, 1, 0, &[MAGIC]).unwrap();
                flags.store(pe, 1, STAGED, 1).unwrap();
                // Hold pre-quiet until PE 1 has sampled the target.
                flags.wait_until(pe, STAGED, |v| v == 1);
                pe.quiet();
                flags.store(pe, 1, FLUSHED, 1).unwrap();
                (0, MAGIC)
            } else {
                flags.wait_until(pe, STAGED, |v| v == 1);
                let before = data.local_get(pe, 0);
                flags.store(pe, 0, STAGED, 1).unwrap(); // acknowledge
                flags.wait_until(pe, FLUSHED, |v| v == 1);
                let after = data.local_get(pe, 0);
                (before, after)
            }
        })
        .unwrap_or_else(|e| panic!("nbi litmus, seed {seed}: {e}"));
        let (before, after) = results[1];
        assert_eq!(before, 0, "seed {seed}: nbi put visible before quiet");
        assert_eq!(after, MAGIC, "seed {seed}: nbi put not visible after quiet");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identical_results() {
        let grid = Grid::single_node(3).unwrap();
        let program = |pe: &Pe| {
            let sym = pe.alloc_sym_atomic(1);
            for dst in 0..pe.n_pes() {
                sym.fetch_add(pe, dst, 0, pe.rank() as u64).unwrap();
            }
            pe.barrier_all();
            sym.local_load(pe, 0)
        };
        let a = explore_schedules(grid, [9, 10, 11], FaultSpec::NONE, program).unwrap();
        let b = explore_schedules(grid, [9, 10, 11], FaultSpec::NONE, program).unwrap();
        assert_eq!(a, b, "a seed must name exactly one schedule");
        for run in &a {
            assert_eq!(run.results, vec![3, 3, 3]);
        }
    }

    #[test]
    fn schedule_independence_of_a_reduction() {
        let grid = Grid::new(2, 2).unwrap();
        let results = assert_schedule_independent(grid, 0..6, FaultSpec::NONE, |pe| {
            pe.allreduce_sum_u64(pe.rank() as u64 + 1)
        });
        assert_eq!(results, vec![10; 4]);
    }

    #[test]
    fn msg_log_accepts_fifo_delivery() {
        let log = MsgLog::new();
        log.push(0, 1, 100);
        log.push(0, 1, 101);
        log.push(2, 1, 7);
        log.pull(0, 1, 100);
        log.pull(2, 1, 7);
        log.pull(0, 1, 101);
        let summary = log.check().unwrap();
        assert_eq!(summary.delivered, 3);
        assert_eq!(summary.pairs, 2);
    }

    #[test]
    fn msg_log_detects_reordering() {
        let log = MsgLog::new();
        log.push(0, 1, 100);
        log.push(0, 1, 101);
        log.pull(0, 1, 101);
        let err = log.check().unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::Fifo {
                src: 0,
                dst: 1,
                index: 0,
                expected: Some(100),
                got: 101
            }
        );
    }

    #[test]
    fn msg_log_detects_loss() {
        let log = MsgLog::new();
        log.push(3, 0, 1);
        log.push(3, 0, 2);
        log.pull(3, 0, 1);
        let err = log.check().unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::InFlight {
                src: 3,
                dst: 0,
                undelivered: 1
            }
        );
    }

    #[test]
    fn msg_log_detects_phantom_pull() {
        let log = MsgLog::new();
        log.pull(0, 1, 9);
        assert!(matches!(
            log.check().unwrap_err(),
            InvariantViolation::Fifo {
                expected: None,
                got: 9,
                ..
            }
        ));
    }

    #[test]
    fn conveyor_quiescence_checker() {
        let balanced = [
            ConveyorStats {
                pushed: 5,
                pulled: 2,
                ..Default::default()
            },
            ConveyorStats {
                pushed: 1,
                pulled: 4,
                ..Default::default()
            },
        ];
        check_conveyor_quiescent(&balanced).unwrap();
        let lossy = [ConveyorStats {
            pushed: 5,
            pulled: 4,
            ..Default::default()
        }];
        assert_eq!(
            check_conveyor_quiescent(&lossy).unwrap_err(),
            InvariantViolation::ConveyorImbalance {
                pushed: 5,
                pulled: 4
            }
        );
    }

    #[test]
    fn nbi_litmus_holds_across_schedules() {
        assert_nbi_invisible_until_quiet(0..6, FaultSpec::NONE);
    }

    #[test]
    fn nbi_litmus_holds_under_shuffle_faults() {
        assert_nbi_invisible_until_quiet(0..6, FaultSpec::nbi_shuffle(0xC4A0));
    }

    #[test]
    fn nbi_litmus_holds_under_flaky_network() {
        // Transparent timeout/retry must not leak a partially-applied nbi
        // put: retried ops stay invisible until the issuing PE's quiet.
        assert_nbi_invisible_until_quiet(0..6, FaultSpec::net_flaky(0xF1A2, 0.05));
    }

    #[test]
    fn nbi_litmus_holds_under_shuffle_and_flaky_combined() {
        assert_nbi_invisible_until_quiet(
            0..4,
            FaultSpec::nbi_shuffle(0xC4A0).and_net_flaky(0xF1A2, 0.05),
        );
    }

    #[test]
    fn step_budget_reports_deadlock_as_error() {
        let grid = Grid::single_node(2).unwrap();
        let harness = Harness::new(grid).sched(SchedSpec::RandomWalk {
            seed: 1,
            max_steps: 20_000,
        });
        // PE 0 waits on a flag nobody ever sets.
        let err = spmd::run(harness, |pe| {
            let flags = pe.alloc_sym_atomic(1);
            if pe.rank() == 0 {
                flags.wait_until(pe, 0, |v| v == 1);
            }
        })
        .unwrap_err();
        match err {
            ShmemError::PePanicked { message, .. } => {
                assert!(
                    message.contains("without terminating")
                        || message.contains("poisoned"),
                    "unexpected panic message: {message}"
                );
            }
            other => panic!("expected PePanicked, got {other:?}"),
        }
    }

    #[test]
    fn violation_display_names_the_pair() {
        let v = InvariantViolation::Fifo {
            src: 2,
            dst: 5,
            index: 3,
            expected: Some(8),
            got: 9,
        };
        assert!(v.to_string().contains("2->5"));
        assert!(
            InvariantViolation::ConveyorImbalance {
                pushed: 1,
                pulled: 0
            }
            .to_string()
            .contains("1 pushed")
        );
    }
}
