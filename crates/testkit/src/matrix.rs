//! The app conformance matrix — one generic registry, every workload.
//!
//! The deterministic-schedule, crash-recovery, and race-detect suites all
//! need the same thing from every bundled application: "build a config
//! from these substrate knobs, run, and give me something comparable".
//! This module defines that contract *generically* — [`AppSpec`] is a
//! name, a seed budget, and a runner from [`MatrixParams`] (the substrate
//! knobs) to [`MatrixRun`] (digests + flattened logical matrix +
//! [`RecoveryLog`]). The concrete ten-app registry lives in
//! `fabsp_apps::matrix` (`fabsp_apps::registry()`), keeping the
//! dependency edge apps → testkit and letting the suites iterate
//! `for app in registry()` instead of hand-writing one test per app.
//!
//! Comparability is by digest: every runner reduces its app's full result
//! to a canonical [`fnv1a`] digest (collections sorted first, floats by
//! bit pattern after any canonical fold), and independently digests the
//! app's *sequential oracle* over the same projection. Equal digests ⇒
//! the distributed run reproduced the golden result; equal
//! [`MatrixRun::result_digest`]s across schedules ⇒ schedule
//! independence, bit-for-bit.
//!
//! Adding a tenth app is ~40 lines in `fabsp_apps::matrix`: a config
//! builder from `MatrixParams`, a runner that digests the outcome and the
//! oracle, and one `AppSpec` entry. Nothing in the suites changes.

use std::fmt;

use fabsp_shmem::{FaultSpec, Grid, RecoveryLog, RecoverySpec, SchedSpec, TransportSpec};

use crate::ConveyorOptions;

/// Default scale when `ACTORPROF_SCALE` is unset: small enough that a
/// full ten-app × three-fault-mode × seed-budget sweep stays in CI
/// budget, large enough that every PE sees real traffic.
pub const DEFAULT_SCALE: u32 = 6;

/// The global scale knob, from `ACTORPROF_SCALE` (clamped to `3..=12`).
/// Apps derive their workload sizes from this one number so CI can shrink
/// or grow the whole matrix with one env var.
pub fn scale_from_env() -> u32 {
    std::env::var("ACTORPROF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
        .clamp(3, 12)
}

/// Substrate knobs a matrix run hands to an app's config builder — the
/// same set `fabsp_apps::common::RunConfig` carries, minus anything
/// app-specific.
#[derive(Debug, Clone)]
pub struct MatrixParams {
    /// PE/node layout.
    pub grid: Grid,
    /// Global workload scale (see [`scale_from_env`]); apps map it to
    /// their own size knobs.
    pub scale: u32,
    /// Collect the logical trace matrix? (Suites that compare traffic
    /// need it; overhead gates turn it off for the untraced arm.)
    pub logical: bool,
    /// Conveyor aggregation options (capacity-1 lanes shrink these).
    pub conveyor: ConveyorOptions,
    /// Thread schedule.
    pub sched: SchedSpec,
    /// Substrate fault injection.
    pub faults: FaultSpec,
    /// PE-death recovery policy.
    pub recovery: RecoverySpec,
    /// Checkpoint cadence in supersteps.
    pub checkpoint_every: Option<u64>,
    /// Continuous-profiling overhead budget, percent (`None` = off). The
    /// apps map it to `Profiler::continuous(OverheadBudget::pct(..))`.
    pub continuous: Option<f64>,
    /// Transport backend carrying cross-node bytes (`InProc` by default;
    /// the equivalence suites run every app under `Ipc` too).
    pub transport: TransportSpec,
}

impl MatrixParams {
    /// Baseline params on the given grid: env scale, logical tracing on,
    /// default conveyors, OS schedule, no faults, abort on death.
    pub fn new(grid: Grid) -> MatrixParams {
        MatrixParams {
            grid,
            scale: scale_from_env(),
            logical: true,
            conveyor: ConveyorOptions::default(),
            sched: SchedSpec::Os,
            faults: FaultSpec::NONE,
            recovery: RecoverySpec::Abort,
            checkpoint_every: None,
            continuous: None,
            transport: TransportSpec::InProc,
        }
    }

    /// Run under continuous profiling with a `pct`-percent overhead budget.
    pub fn with_continuous(mut self, pct: f64) -> MatrixParams {
        self.continuous = Some(pct);
        self
    }

    /// Select the thread schedule.
    pub fn with_sched(mut self, sched: SchedSpec) -> MatrixParams {
        self.sched = sched;
        self
    }

    /// Inject substrate faults.
    pub fn with_faults(mut self, faults: FaultSpec) -> MatrixParams {
        self.faults = faults;
        self
    }

    /// Select the recovery policy and checkpoint cadence.
    pub fn with_recovery(mut self, recovery: RecoverySpec, checkpoint_every: u64) -> MatrixParams {
        self.recovery = recovery;
        self.checkpoint_every = Some(checkpoint_every);
        self
    }

    /// Override conveyor options (capacity-1 stress lanes).
    pub fn with_conveyor(mut self, conveyor: ConveyorOptions) -> MatrixParams {
        self.conveyor = conveyor;
        self
    }

    /// Select the transport backend.
    pub fn with_transport(mut self, transport: TransportSpec) -> MatrixParams {
        self.transport = transport;
        self
    }
}

/// The uniform, comparable result of one matrix run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRun {
    /// Canonical digest of the app's full deterministic result.
    pub result_digest: u64,
    /// Digest of the sequential golden oracle over the same projection.
    pub golden_digest: u64,
    /// Flattened `n_pes × n_pes` logical trace matrix (row-major), when
    /// [`MatrixParams::logical`] was set.
    pub logical: Option<Vec<u64>>,
    /// PE count the run used (the logical matrix's dimension).
    pub n_pes: usize,
    /// Fault-tolerance activity observed by the run.
    pub recovery: RecoveryLog,
}

impl MatrixRun {
    /// Assert the distributed result reproduced the golden oracle.
    ///
    /// # Panics
    /// Panics naming `ctx` (app + seed, usually) on mismatch.
    pub fn assert_golden(&self, ctx: &dyn fmt::Display) {
        assert_eq!(
            self.result_digest, self.golden_digest,
            "{ctx}: distributed result diverged from the golden oracle"
        );
    }

    /// Assert this run matches a baseline run bit-for-bit: same result
    /// digest and same logical trace matrix.
    ///
    /// # Panics
    /// Panics naming `ctx` on any divergence.
    pub fn assert_matches(&self, baseline: &MatrixRun, ctx: &dyn fmt::Display) {
        assert_eq!(
            self.result_digest, baseline.result_digest,
            "{ctx}: result diverged from baseline"
        );
        assert_eq!(
            self.logical, baseline.logical,
            "{ctx}: logical trace matrix diverged from baseline"
        );
    }
}

/// One registered application: a name for failure messages, a per-app
/// seed budget for the fuzz sweep (cheap apps afford more seeds), and the
/// runner that maps substrate knobs to a comparable run.
///
/// `runner` is a plain `fn` — everything a run needs rides in
/// [`MatrixParams`], which keeps registry entries `'static` and the
/// registry itself a simple `Vec`.
#[derive(Debug, Clone, Copy)]
pub struct AppSpec {
    /// Short app name (`"histogram"`, `"intsort"`, …).
    pub name: &'static str,
    /// Schedule-fuzz seeds this app runs per fault mode.
    pub fuzz_seed_budget: u64,
    /// Build the app's config from the params, run it, digest it.
    pub runner: fn(&MatrixParams) -> Result<MatrixRun, String>,
}

impl AppSpec {
    /// Run the app under these params.
    pub fn run(&self, params: &MatrixParams) -> Result<MatrixRun, String> {
        (self.runner)(params)
    }
}

/// FNV-1a over a stream of `u64` words — the canonical result digest.
/// Not cryptographic; collision resistance here only has to beat "two
/// different app results produced by the same deterministic seed", and a
/// 64-bit FNV state is plenty for that.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest state.
    pub fn new() -> Digest {
        Digest(Self::OFFSET)
    }

    /// Fold one word into the state.
    pub fn word(&mut self, w: u64) -> &mut Digest {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a slice of words.
    pub fn words(&mut self, ws: impl IntoIterator<Item = u64>) -> &mut Digest {
        for w in ws {
            self.word(w);
        }
        self
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

/// One-shot digest of a word stream.
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    Digest::new().words(words).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let a = fnv1a([1, 2, 3]);
        let b = fnv1a([1, 2, 3]);
        let c = fnv1a([3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c, "canonical order matters; callers sort first");
        assert_ne!(fnv1a([]), fnv1a([0]), "a zero word is not a no-op");
    }

    #[test]
    fn matrix_run_assertions() {
        let run = MatrixRun {
            result_digest: 7,
            golden_digest: 7,
            logical: Some(vec![0, 1, 1, 0]),
            n_pes: 2,
            recovery: RecoveryLog::default(),
        };
        run.assert_golden(&"test");
        run.assert_matches(&run.clone(), &"test");
    }

    #[test]
    #[should_panic(expected = "diverged from the golden oracle")]
    fn golden_mismatch_panics() {
        let run = MatrixRun {
            result_digest: 7,
            golden_digest: 8,
            logical: None,
            n_pes: 2,
            recovery: RecoveryLog::default(),
        };
        run.assert_golden(&"test");
    }

    #[test]
    fn params_builders_compose() {
        let grid = Grid::single_node(2).unwrap();
        let p = MatrixParams::new(grid)
            .with_sched(SchedSpec::random_walk(3))
            .with_faults(FaultSpec::nbi_shuffle(9))
            .with_recovery(RecoverySpec::restart(2), 1);
        assert!(matches!(p.sched, SchedSpec::RandomWalk { seed: 3, .. }));
        assert_eq!(p.checkpoint_every, Some(1));
        assert!(p.logical);
    }

    #[test]
    fn scale_env_is_clamped() {
        // can't set env safely in parallel tests; just check the default
        // path and the clamp arithmetic
        assert_eq!(DEFAULT_SCALE.clamp(3, 12), DEFAULT_SCALE);
        assert_eq!(99u32.clamp(3, 12), 12);
        assert_eq!(1u32.clamp(3, 12), 3);
    }
}
