//! # actorprof-suite — workspace-level examples and integration tests
//!
//! This crate re-exports the whole ActorProf reproduction stack so the
//! `examples/` binaries and `tests/` integration tests can reach every
//! layer through one dependency:
//!
//! - substrates: [`fabsp_shmem`], [`fabsp_conveyors`], [`fabsp_actor`],
//!   [`fabsp_hwpc`], [`fabsp_graph`];
//! - the profiler: [`actorprof_trace`], [`actorprof`], [`actorprof_viz`];
//! - always-on runtime telemetry: [`fabsp_telemetry`];
//! - workloads and the evaluation harness: [`fabsp_apps`], [`fabsp_bench`];
//! - deterministic testing: [`fabsp_testkit`].

pub use actorprof;
pub use actorprof_trace;
pub use actorprof_viz;
pub use fabsp_actor;
pub use fabsp_apps;
pub use fabsp_bench;
pub use fabsp_conveyors;
pub use fabsp_graph;
pub use fabsp_hwpc;
pub use fabsp_shmem;
pub use fabsp_telemetry;
pub use fabsp_testkit;
