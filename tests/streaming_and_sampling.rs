//! End-to-end checks of the §VI large-trace features: streaming exact
//! records to disk during the run, and sampling them.

use actorprof_suite::actorprof::{compare::Comparison, reader};
use actorprof_suite::actorprof_trace::TraceConfig;
use actorprof_suite::fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use actorprof_suite::fabsp_graph::edgelist::to_lower_triangular;
use actorprof_suite::fabsp_graph::rmat::{generate_edges, RmatParams};
use actorprof_suite::fabsp_graph::Csr;
use actorprof_suite::fabsp_shmem::Grid;

fn graph(scale: u32) -> Csr {
    let p = RmatParams::graph500(scale);
    Csr::from_edges(p.n_vertices(), &to_lower_triangular(&generate_edges(&p)))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("actorprof-sas-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn streamed_records_match_in_memory_aggregate() {
    let l = graph(6);
    let grid = Grid::new(2, 2).unwrap();
    let dir = tmpdir("stream");
    let config = TriangleConfig::new(grid)
        .with_trace(TraceConfig::off().with_streaming(&dir));
    let outcome = count_triangles(&l, &config).unwrap();

    // The streamed per-send files must reproduce the in-memory aggregate
    // matrix exactly.
    let mem = outcome.bundle.logical_matrix().unwrap();
    let mut from_disk = actorprof_suite::actorprof::Matrix::zeros(grid.n_pes());
    for pe in 0..grid.n_pes() {
        let records = reader::read_logical_exact(&dir.join(format!("PE{pe}_send.csv"))).unwrap();
        for r in records {
            assert_eq!(r.src_pe as usize, pe);
            from_disk.add(r.src_pe as usize, r.dst_pe as usize, 1);
        }
    }
    assert_eq!(from_disk, mem);
    assert_eq!(from_disk.total(), outcome.wedges);

    // Memory held no exact records — that's the point of streaming.
    for c in outcome.bundle.collectors() {
        assert!(c.logical_records().is_empty());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sampled_records_are_a_constant_fraction() {
    let l = graph(7);
    let grid = Grid::single_node(4).unwrap();
    let k = 8u32;
    let config = TriangleConfig::new(grid)
        .with_trace(TraceConfig::off().with_logical_sampling(k));
    let outcome = count_triangles(&l, &config).unwrap();
    for c in outcome.bundle.collectors() {
        let total = c.total_sends();
        let kept = c.logical_records().len() as u64;
        // every k-th send kept: ceil(total / k)
        assert_eq!(kept, total.div_ceil(k as u64), "PE{}", c.pe());
    }
}

#[test]
fn comparison_reproduces_figure5_statements() {
    let l = graph(8);
    let grid = Grid::single_node(8).unwrap();
    let run = |dist| {
        count_triangles(
            &l,
            &TriangleConfig::new(grid)
                .with_dist(dist)
                .with_trace(TraceConfig::all()),
        )
        .unwrap()
        .bundle
    };
    let cyclic = run(DistKind::Cyclic);
    let range = run(DistKind::RangeByNnz);
    let c = Comparison::between("1D Cyclic", &cyclic, "1D Range", &range).unwrap();

    let sends = c.logical_sends.expect("logical traces collected");
    assert!(
        sends.max_ratio > 1.5,
        "cyclic max sends dominate range's: {:.2}",
        sends.max_ratio
    );
    assert!(
        (sends.total_ratio - 1.0).abs() < 1e-12,
        "same wedges total regardless of distribution"
    );
    let ins = c.instructions.expect("papi collected");
    assert!(ins.max_ratio > 1.5, "instruction hot spot under cyclic");
    let text = c.render();
    assert!(text.contains("1D Cyclic vs 1D Range"));
    assert!(text.contains("logical sends"));
}
