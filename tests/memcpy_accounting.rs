//! Quantify the copy chain per message — the paper's "Note for
//! self-sends" (§IV-D): Conveyors never bypasses the aggregation path, so
//! even a self-send pays multiple memcpys, "up to six std::memcpy ops" on
//! the routed path. `ConveyorStats::item_copies` counts item-granularity
//! copies at every stage:
//!
//! | path | copies | stages |
//! |---|---|---|
//! | self-send / same-node direct | 4 | push, local_send put, consume, pull |
//! | cross-node direct | 5 | push, nbi capture, quiet apply, consume, pull |
//! | routed (row + column) | 7 | push, local_send put, relay restage, nbi capture, quiet apply, consume, pull |

use actorprof_suite::fabsp_conveyors::{Conveyor, ConveyorOptions, TopologySpec};
use actorprof_suite::fabsp_shmem::{spmd, Grid};

/// Send exactly one message `src` → `dst` through a fresh conveyor and
/// return the world-total `item_copies`.
fn copies_for_single_message(grid: Grid, src: usize, dst: usize) -> u64 {
    let stats = spmd::run(grid, move |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity: 4,
                topology: TopologySpec::Auto,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        let mut sent = pe.rank() != src;
        loop {
            if !sent && c.push(pe, 42, dst).unwrap().is_accepted() {
                sent = true;
            }
            let active = c.advance(pe, sent);
            while c.pull().is_some() {}
            if !active {
                break;
            }
            pe.poll_yield();
        }
        c.stats().item_copies
    })
    .unwrap();
    stats.iter().sum()
}

#[test]
fn self_send_pays_four_copies() {
    let copies = copies_for_single_message(Grid::single_node(1).unwrap(), 0, 0);
    assert_eq!(copies, 4, "push, local_send put, consume, pull");
}

#[test]
fn same_node_direct_pays_four_copies() {
    let copies = copies_for_single_message(Grid::single_node(2).unwrap(), 0, 1);
    assert_eq!(copies, 4);
}

#[test]
fn cross_node_direct_pays_five_copies() {
    // 2 nodes x 1 PE: destination is in the sender's mesh column.
    let copies = copies_for_single_message(Grid::new(2, 1).unwrap(), 0, 1);
    assert_eq!(copies, 5, "push, nbi capture, quiet apply, consume, pull");
}

#[test]
fn routed_send_pays_at_least_six_copies() {
    // 2 nodes x 2 PEs: 0 = (n0,l0) -> 3 = (n1,l1) routes via PE 1.
    let copies = copies_for_single_message(Grid::new(2, 2).unwrap(), 0, 3);
    assert_eq!(
        copies, 7,
        "push, row put, relay restage, nbi capture, quiet apply, consume, pull"
    );
    assert!(copies >= 6, "the paper's 'up to six memcpy' bound");
}

#[test]
fn copy_count_scales_linearly_with_messages() {
    // 10 messages over the routed path: same per-message cost (buffers
    // amortize flushes, not copies).
    let grid = Grid::new(2, 2).unwrap();
    let stats = spmd::run(grid, move |pe| {
        let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
        let mut sent = 0;
        let quota = if pe.rank() == 0 { 10 } else { 0 };
        loop {
            while sent < quota && c.push(pe, sent as u64, 3).unwrap().is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == quota);
            while c.pull().is_some() {}
            if !active {
                break;
            }
            pe.poll_yield();
        }
        c.stats().item_copies
    })
    .unwrap();
    assert_eq!(stats.iter().sum::<u64>(), 70, "7 copies x 10 messages");
}
