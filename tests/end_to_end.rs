//! End-to-end integration: run the traced case study, write every trace
//! file, read them back, and check cross-layer consistency.

use actorprof_suite::actorprof::{reader, writer, Matrix};
use actorprof_suite::actorprof_trace::{SendType, TraceConfig};
use actorprof_suite::fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use actorprof_suite::fabsp_graph::edgelist::to_lower_triangular;
use actorprof_suite::fabsp_graph::rmat::{generate_edges, RmatParams};
use actorprof_suite::fabsp_graph::{triangle_ref, Csr};
use actorprof_suite::fabsp_shmem::Grid;

fn case_study_graph(scale: u32) -> Csr {
    let params = RmatParams::graph500(scale);
    let edges = to_lower_triangular(&generate_edges(&params));
    Csr::from_edges(params.n_vertices(), &edges)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("actorprof-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn traced_case_study_roundtrips_through_files() {
    let l = case_study_graph(7);
    let grid = Grid::new(2, 3).unwrap();
    let config = TriangleConfig::new(grid)
        .with_dist(DistKind::Cyclic)
        .with_trace(TraceConfig::all().with_logical_records());
    let outcome = count_triangles(&l, &config).unwrap();

    // correctness vs both reference algorithms
    assert_eq!(outcome.triangles, triangle_ref::count_by_wedges(&l));
    assert_eq!(outcome.triangles, triangle_ref::count_by_intersection(&l));

    // write + read back
    let dir = tmpdir("roundtrip");
    let files = writer::write_all(&dir, &outcome.bundle).unwrap();
    assert!(files.iter().any(|f| f == "physical.txt"));
    assert!(files.iter().any(|f| f == "overall.txt"));

    // logical: on-disk matrix equals in-memory matrix; exact records agree
    let mem = outcome.bundle.logical_matrix().unwrap();
    let disk = reader::read_logical_matrix(&dir, grid.n_pes()).unwrap();
    assert_eq!(mem, disk);
    assert_eq!(mem.total(), outcome.wedges, "one message per wedge");
    let mut from_records = Matrix::zeros(grid.n_pes());
    for pe in 0..grid.n_pes() {
        for r in reader::read_logical_exact(&dir.join(format!("PE{pe}_send.csv"))).unwrap() {
            assert_eq!(r.src_pe as usize, pe);
            assert_eq!(r.msg_size, 8, "wedge messages are 8 bytes");
            from_records.add(r.src_pe as usize, r.dst_pe as usize, 1);
        }
    }
    assert_eq!(from_records, mem, "exact records sum to the aggregate");

    // physical: every record classifies consistently with the mesh
    let physical = reader::read_physical(&dir.join("physical.txt")).unwrap();
    assert!(!physical.is_empty());
    let mut nonblock = 0u64;
    let mut progress = 0u64;
    for r in &physical {
        match r.send_type {
            SendType::LocalSend => assert!(
                grid.same_node(r.src_pe as usize, r.dst_pe as usize),
                "local_send crossed nodes"
            ),
            SendType::NonblockSend => {
                nonblock += 1;
                assert!(!grid.same_node(r.src_pe as usize, r.dst_pe as usize));
            }
            SendType::NonblockProgress => progress += 1,
        }
    }
    assert_eq!(
        nonblock, progress,
        "every nonblock_send must be completed by one nonblock_progress"
    );

    // overall: fractions consistent, totals dominate regions
    let overall = reader::read_overall(&dir.join("overall.txt")).unwrap();
    assert_eq!(overall.len(), grid.n_pes());
    for r in &overall {
        assert!(r.t_total >= r.t_main + r.t_proc);
        let (m, c, p) = r.relative();
        assert!((m + c + p - 1.0).abs() < 1e-9);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn untraced_run_records_nothing_but_counts_right() {
    let l = case_study_graph(6);
    let grid = Grid::single_node(4).unwrap();
    let outcome = count_triangles(&l, &TriangleConfig::new(grid)).unwrap();
    assert_eq!(outcome.triangles, triangle_ref::count_by_wedges(&l));
    assert!(outcome.bundle.logical_matrix().is_err());
    assert!(outcome.bundle.physical_matrix(None).is_err());
    assert!(outcome.bundle.overall_records().is_err());
    assert_eq!(outcome.bundle.trace_bytes(), 0);
}

#[test]
fn same_input_same_trace_across_runs() {
    // Determinism: communication matrices are run-invariant (counts don't
    // depend on thread scheduling).
    let l = case_study_graph(6);
    let grid = Grid::new(2, 2).unwrap();
    let config = TriangleConfig::new(grid)
        .with_dist(DistKind::RangeByNnz)
        .with_trace(TraceConfig::off().with_logical());
    let a = count_triangles(&l, &config).unwrap();
    let b = count_triangles(&l, &config).unwrap();
    assert_eq!(
        a.bundle.logical_matrix().unwrap(),
        b.bundle.logical_matrix().unwrap()
    );
    assert_eq!(a.triangles, b.triangles);
}

#[test]
fn per_pe_triangle_counts_sum_to_total() {
    let l = case_study_graph(7);
    let grid = Grid::single_node(5).unwrap();
    let outcome = count_triangles(&l, &TriangleConfig::new(grid)).unwrap();
    assert_eq!(
        outcome.per_pe_triangles.iter().sum::<u64>(),
        outcome.triangles
    );
    assert_eq!(outcome.per_pe_triangles.len(), 5);
}
