//! The lock-freedom acceptance gate: the per-message conveyor hot path
//! (`push` + `pull`) must never acquire a mutex. The vendored parking_lot
//! shim counts the calling thread's successful lock acquisitions in debug
//! builds ([`debug_lock_acquisitions`]), so a mutex anywhere on the path —
//! say, a `SymmetricVec` landing-slot region sneaking back in — fails
//! these tests instead of silently re-serializing the benchmark.
//!
//! The runs use a plain [`Grid`] (free-running world, no deterministic
//! scheduler), which also arms the conveyor's own internal probes: `push`
//! asserts a zero delta around its body whenever `!pe.is_scheduled()`, and
//! `pull` asserts unconditionally.

use actorprof_suite::fabsp_conveyors::{Conveyor, ConveyorOptions, TopologySpec};
use actorprof_suite::fabsp_shmem::{
    debug_lock_acquisitions, spmd, Grid, Harness, TransportSpec,
};

/// All-to-all exchange measuring the lock delta attributable to `push` and
/// `pull` alone (`advance` may legitimately lock: barriers, nbi drains).
/// Returns (messages exchanged, hot-path lock delta) per PE.
///
/// The transport backend is pinned explicitly: the zero-delta gates below
/// assert against `InProc` by construction (not by defaulting), and the
/// `Ipc` lanes prove the ring-mailbox carry path is just as lock-free.
fn hotpath_lock_delta(
    grid: Grid,
    items: usize,
    capacity: usize,
    transport: TransportSpec,
) -> Vec<(u64, u64)> {
    let harness = Harness::new(grid).transport(transport);
    spmd::run(harness, move |pe| {
        // telemetry is on by default: the zero deltas below prove the
        // always-on metrics stay off the mutex path too
        assert!(
            pe.metrics().is_some(),
            "default harness must wire the telemetry registry"
        );
        assert_eq!(
            pe.transport_kind(),
            transport.kind(),
            "harness must run the requested transport backend"
        );
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity,
                topology: TopologySpec::Auto,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        let n = pe.n_pes();
        let me = pe.rank();
        let mut next = 0usize;
        let mut received = 0u64;
        let mut hot_delta = 0u64;
        loop {
            let before = debug_lock_acquisitions();
            while next < items {
                let dst = (me + next) % n;
                if c.push(pe, next as u64, dst).unwrap().is_accepted() {
                    next += 1;
                } else {
                    break;
                }
            }
            hot_delta += debug_lock_acquisitions() - before;

            let active = c.advance(pe, next == items);

            let before = debug_lock_acquisitions();
            while c.pull().is_some() {
                received += 1;
            }
            hot_delta += debug_lock_acquisitions() - before;
            if !active {
                break;
            }
            pe.poll_yield();
        }
        (received, hot_delta)
    })
    .unwrap()
}

#[test]
fn push_and_pull_take_no_locks_single_node() {
    let runs = hotpath_lock_delta(Grid::single_node(4).unwrap(), 3000, 64, TransportSpec::InProc);
    for (got, delta) in runs {
        assert_eq!(got, 3000);
        assert_eq!(delta, 0, "mutex acquired on the single-node hot path");
    }
}

#[test]
fn push_and_pull_take_no_locks_across_nodes() {
    // 2x2 mesh: exercises local links, remote (nbi) links, and the relay
    // re-stage path — all of which run inside push/pull/consume.
    let runs = hotpath_lock_delta(Grid::new(2, 2).unwrap(), 3000, 64, TransportSpec::InProc);
    for (got, delta) in runs {
        assert_eq!(got, 3000);
        assert_eq!(delta, 0, "mutex acquired on the cross-node hot path");
    }
}

#[test]
fn push_and_pull_take_no_locks_across_nodes_ipc() {
    // Every cross-node nbi put additionally stages a frame in the ipc
    // ring mailbox; staging is pure atomics + memcpy, so the delta must
    // stay zero here too.
    let runs = hotpath_lock_delta(Grid::new(2, 2).unwrap(), 3000, 64, TransportSpec::ipc());
    for (got, delta) in runs {
        assert_eq!(got, 3000);
        assert_eq!(delta, 0, "mutex acquired on the ipc-transport hot path");
    }
}

#[test]
fn capacity_one_flush_inside_push_takes_no_locks() {
    // capacity 1 makes every push flush its link inline, so the flush
    // (cell claim + fill + release-publish) is measured by the same probe.
    for (got, delta) in hotpath_lock_delta(Grid::new(2, 2).unwrap(), 200, 1, TransportSpec::InProc)
    {
        assert_eq!(got, 200);
        assert_eq!(delta, 0, "mutex acquired by the inline flush path");
    }
}

#[test]
fn capacity_one_flush_inside_push_takes_no_locks_ipc() {
    for (got, delta) in hotpath_lock_delta(Grid::new(2, 2).unwrap(), 200, 1, TransportSpec::ipc())
    {
        assert_eq!(got, 200);
        assert_eq!(delta, 0, "mutex acquired by the ipc inline flush path");
    }
}

/// Batched variant of [`hotpath_lock_delta`]: whole slices staged with
/// `push_slice`, deliveries drained as zero-copy `pull_batch` runs.
fn batched_hotpath_lock_delta(
    grid: Grid,
    items: usize,
    capacity: usize,
    transport: TransportSpec,
) -> Vec<(u64, u64)> {
    let harness = Harness::new(grid).transport(transport);
    spmd::run(harness, move |pe| {
        assert_eq!(pe.transport_kind(), transport.kind());
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity,
                topology: TopologySpec::Auto,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        let n = pe.n_pes();
        let me = pe.rank();
        let slices: Vec<Vec<u64>> = (0..n)
            .map(|dst| {
                (0..items)
                    .filter(|k| (me + k) % n == dst)
                    .map(|k| k as u64)
                    .collect()
            })
            .collect();
        let total: usize = slices.iter().map(Vec::len).sum();
        let mut offsets = vec![0usize; n];
        let mut received = 0u64;
        let mut hot_delta = 0u64;
        loop {
            let before = debug_lock_acquisitions();
            let mut sent = 0usize;
            for (dst, slice) in slices.iter().enumerate() {
                if offsets[dst] < slice.len() {
                    offsets[dst] += c.push_slice(pe, &slice[offsets[dst]..], dst).unwrap().accepted;
                }
                sent += offsets[dst];
            }
            hot_delta += debug_lock_acquisitions() - before;

            let active = c.advance(pe, sent == total);

            let before = debug_lock_acquisitions();
            while let Some(batch) = c.pull_batch() {
                received += batch.items.len() as u64;
            }
            hot_delta += debug_lock_acquisitions() - before;
            if !active {
                break;
            }
            pe.poll_yield();
        }
        (received, hot_delta)
    })
    .unwrap()
}

#[test]
fn push_slice_and_pull_batch_take_no_locks_single_node() {
    let runs =
        batched_hotpath_lock_delta(Grid::single_node(4).unwrap(), 3000, 64, TransportSpec::InProc);
    for (got, delta) in runs {
        assert_eq!(got, 3000);
        assert_eq!(delta, 0, "mutex acquired on the batched single-node hot path");
    }
}

#[test]
fn push_slice_and_pull_batch_take_no_locks_across_nodes() {
    let runs =
        batched_hotpath_lock_delta(Grid::new(2, 2).unwrap(), 3000, 64, TransportSpec::InProc);
    for (got, delta) in runs {
        assert_eq!(got, 3000);
        assert_eq!(delta, 0, "mutex acquired on the batched cross-node hot path");
    }
}

#[test]
fn push_slice_and_pull_batch_take_no_locks_across_nodes_ipc() {
    let runs = batched_hotpath_lock_delta(Grid::new(2, 2).unwrap(), 3000, 64, TransportSpec::ipc());
    for (got, delta) in runs {
        assert_eq!(got, 3000);
        assert_eq!(delta, 0, "mutex acquired on the batched ipc hot path");
    }
}

#[test]
fn counter_itself_observes_locks() {
    // Sanity-check the instrument: a deliberate mutex acquisition must
    // register, or the zero-delta assertions above prove nothing.
    let m = actorprof_suite::fabsp_shmem::parking_lot::Mutex::new(0u32);
    let before = debug_lock_acquisitions();
    *m.lock() += 1;
    assert_eq!(
        debug_lock_acquisitions(),
        before + 1,
        "debug lock counter must count acquisitions in debug builds"
    );
}
