//! Schedule fuzzing: every bundled workload must be *schedule
//! independent*.
//!
//! Each app's logical trace matrix and application result are pure
//! functions of the app seed — the thread interleaving, put/quiet timing,
//! and conveyor buffer boundaries may vary freely underneath. The sweep
//! iterates the ten-app registry (`fabsp_apps::registry()`): per app, an
//! OS-scheduled baseline [`MatrixRun`] is captured, checked against the
//! app's sequential golden oracle, and then replayed under seeded
//! random-walk schedules in three fault modes (none, `nbi_shuffle`,
//! `net_flaky`). Every replay must reproduce the baseline bit-for-bit —
//! result digest *and* flattened logical matrix (which also pins message
//! conservation: same per-pair send counts under every schedule). A
//! divergence names the app and seed, which replays that exact schedule.
//!
//! Per-app seed budgets (Σ budgets × 3 modes = 132 schedules) keep the
//! sweep past the 100-schedule floor while staying CI-affordable; the
//! capacity-1, kill/restart, and ipc-transport lanes run smaller seed
//! slices on top (the ipc arm runs one seed per app × mode, leaning on
//! `transport_equivalence.rs` for the backend-vs-backend sweep).
//!
//! Physical traces and timings are intentionally *not* compared: buffer
//! flush boundaries legitimately depend on the schedule.
//!
//! `FABSP_TESTKIT_SEED` offsets the seed range so CI can sweep disjoint
//! schedule sets across jobs without code changes; `ACTORPROF_SCALE`
//! scales every workload from one knob.

use actorprof_suite::fabsp_apps::registry;
use actorprof_suite::fabsp_conveyors::ConveyorOptions;
use actorprof_suite::fabsp_shmem::{FaultSpec, Grid, RecoverySpec, SchedSpec, TransportSpec};
use actorprof_suite::fabsp_testkit::matrix::{MatrixParams, MatrixRun};
use actorprof_suite::fabsp_testkit::DEFAULT_STEP_BUDGET;

/// CI seed offset: disjoint jobs explore disjoint schedule sets.
fn seed_base() -> u64 {
    std::env::var("FABSP_TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The three fault modes every sweep runs under. `nbi_shuffle` delivers
/// non-blocking puts in a hostile-but-legal order at each quiet;
/// `net_flaky` injects seeded transient timeouts that the substrate must
/// retry transparently.
fn fault_modes() -> [FaultSpec; 3] {
    [
        FaultSpec::NONE,
        FaultSpec::nbi_shuffle(0xFA_B5),
        FaultSpec::net_flaky(0xF1A2, 0.2),
    ]
}

/// Seed window for `(app, mode)`: disjoint per mode and per app so no two
/// sweeps replay the same schedule.
fn sweep_seeds(app_idx: usize, mode: usize, budget: u64) -> impl Iterator<Item = u64> {
    let lo = seed_base() + (mode as u64) * 10_000 + (app_idx as u64) * 100;
    lo..lo + budget
}

fn fuzz_grid() -> Grid {
    Grid::new(2, 2).unwrap()
}

fn baseline(params: &MatrixParams, name: &str) -> MatrixRun {
    let apps = registry();
    let app = apps.iter().find(|a| a.name == name).expect("registered");
    let run = app
        .run(params)
        .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
    run.assert_golden(&format!("{name} baseline"));
    run
}

#[test]
fn registry_is_schedule_independent() {
    let params = MatrixParams::new(fuzz_grid());
    let mut schedules = 0u64;
    for (app_idx, app) in registry().into_iter().enumerate() {
        let base = app
            .run(&params)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", app.name));
        base.assert_golden(&format!("{} baseline", app.name));
        assert!(
            base.recovery.is_clean(),
            "{} baseline: {}",
            app.name,
            base.recovery
        );
        let logical = base.logical.as_ref().expect("logical trace collected");
        assert!(
            logical.iter().sum::<u64>() > 0,
            "{}: the baseline sent traffic",
            app.name
        );

        for (mode, faults) in fault_modes().into_iter().enumerate() {
            for seed in sweep_seeds(app_idx, mode, app.fuzz_seed_budget) {
                let p = params
                    .clone()
                    .with_sched(SchedSpec::random_walk(seed))
                    .with_faults(faults);
                let out = app
                    .run(&p)
                    .unwrap_or_else(|e| panic!("{} seed {seed} ({faults:?}): {e}", app.name));
                let ctx = format!("{} seed {seed} ({faults:?})", app.name);
                out.assert_matches(&base, &ctx);
                out.assert_golden(&ctx);
                schedules += 1;
            }
        }
    }
    assert!(
        schedules >= 100,
        "the sweep must cover >= 100 schedules, ran {schedules}"
    );
}

#[test]
fn registry_survives_capacity_one_aggregation() {
    // Shrink every aggregation buffer and landing slot to a single item:
    // maximal buffer-boundary pressure, constant flushing, and (on the
    // mesh) relay traffic at every step. Results must be unchanged for
    // every app under every fault mode.
    let mut params = MatrixParams::new(fuzz_grid());
    params.conveyor = ConveyorOptions {
        capacity: 1,
        ..ConveyorOptions::default()
    };
    for (app_idx, app) in registry().into_iter().enumerate() {
        let base = app
            .run(&params)
            .unwrap_or_else(|e| panic!("{} capacity-1 baseline: {e}", app.name));
        base.assert_golden(&format!("{} capacity-1 baseline", app.name));
        for (mode, faults) in fault_modes().into_iter().enumerate() {
            for seed in sweep_seeds(app_idx, mode + 5, 2) {
                let p = params
                    .clone()
                    .with_sched(SchedSpec::random_walk(seed))
                    .with_faults(faults);
                let out = app.run(&p).unwrap_or_else(|e| {
                    panic!("{} capacity-1 seed {seed} ({faults:?}): {e}", app.name)
                });
                out.assert_matches(
                    &base,
                    &format!("{} capacity-1 seed {seed} ({faults:?})", app.name),
                );
            }
        }
    }
}

#[test]
fn kill_and_restart_is_schedule_independent_across_registry() {
    // Crash recovery composes with schedule exploration: killing a PE at
    // the first superstep boundary and restarting must reproduce the
    // OS-scheduled, unkilled baseline under every explored schedule. The
    // scheduler is rebuilt per attempt, so the retried attempt replays the
    // same seeded walk.
    let params = MatrixParams::new(fuzz_grid());
    for (app_idx, app) in registry().into_iter().enumerate() {
        let base = baseline(&params, app.name);
        for seed in sweep_seeds(app_idx, 9, 2) {
            let p = params
                .clone()
                .with_sched(SchedSpec::random_walk(seed))
                .with_faults(FaultSpec::kill_pe(1, 0))
                .with_recovery(RecoverySpec::restart(2), 1);
            let out = app
                .run(&p)
                .unwrap_or_else(|e| panic!("{} kill+restart seed {seed}: {e}", app.name));
            let ctx = format!("{} kill+restart seed {seed}", app.name);
            out.assert_matches(&base, &ctx);
            assert_eq!(out.recovery.restarts, 1, "{ctx}: {}", out.recovery);
            assert_eq!(out.recovery.kills_observed.len(), 1, "{ctx}");
        }
    }
}

#[test]
fn registry_is_schedule_independent_on_ipc_transport() {
    // The ipc ring-mailbox backend rides the same contract: one seed per
    // (app, fault mode) — a thin arm on top of the main sweep (30
    // schedules, not a second 132) because the transport_equivalence
    // suite already sweeps backend-vs-backend; this lane pins that the
    // *schedule independence* property itself holds while the ipc
    // backend is carrying the cross-node bytes.
    let params = MatrixParams::new(fuzz_grid()).with_transport(TransportSpec::ipc());
    for (app_idx, app) in registry().into_iter().enumerate() {
        let base = baseline(&params, app.name);
        for (mode, faults) in fault_modes().into_iter().enumerate() {
            for seed in sweep_seeds(app_idx, mode + 20, 1) {
                let p = params
                    .clone()
                    .with_sched(SchedSpec::random_walk(seed))
                    .with_faults(faults);
                let out = app.run(&p).unwrap_or_else(|e| {
                    panic!("{} ipc seed {seed} ({faults:?}): {e}", app.name)
                });
                let ctx = format!("{} ipc seed {seed} ({faults:?})", app.name);
                out.assert_matches(&base, &ctx);
                out.assert_golden(&ctx);
            }
        }
    }
}

#[test]
fn registry_survives_capacity_one_aggregation_on_ipc_transport() {
    // Capacity-1 lanes maximize flush pressure — with the ipc backend
    // that also means a carry per (tiny) cross-node flush, the worst
    // frame-rate case for the ring mailboxes. One seed per app.
    let mut params = MatrixParams::new(fuzz_grid()).with_transport(TransportSpec::ipc());
    params.conveyor = ConveyorOptions {
        capacity: 1,
        ..ConveyorOptions::default()
    };
    for (app_idx, app) in registry().into_iter().enumerate() {
        let base = app
            .run(&params)
            .unwrap_or_else(|e| panic!("{} ipc capacity-1 baseline: {e}", app.name));
        base.assert_golden(&format!("{} ipc capacity-1 baseline", app.name));
        for seed in sweep_seeds(app_idx, 24, 1) {
            let p = params.clone().with_sched(SchedSpec::random_walk(seed));
            let out = app
                .run(&p)
                .unwrap_or_else(|e| panic!("{} ipc capacity-1 seed {seed}: {e}", app.name));
            out.assert_matches(&base, &format!("{} ipc capacity-1 seed {seed}", app.name));
        }
    }
}

#[test]
fn step_budget_is_generous_enough_for_the_workloads() {
    // The termination checker (step budget) must never fire on a healthy
    // run; document the headroom so scale bumps don't silently approach it.
    use actorprof_suite::fabsp_apps::histogram::{self, HistogramConfig};
    let mut cfg = HistogramConfig::new(Grid::single_node(2).unwrap());
    cfg.updates_per_pe = 8;
    cfg.table_size_per_pe = 8;
    cfg.sched = SchedSpec::RandomWalk {
        seed: seed_base(),
        max_steps: DEFAULT_STEP_BUDGET,
    };
    histogram::run(&cfg).expect("healthy run must stay far under the step budget");
}
