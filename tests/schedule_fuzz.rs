//! Schedule fuzzing: the three workloads must be *schedule independent*.
//!
//! Every kernel's logical trace matrix and application result are pure
//! functions of the app seed — the thread interleaving, put/quiet timing,
//! and conveyor buffer boundaries may vary freely underneath. This sweep
//! runs each kernel under ≥100 seeded random-walk schedules (34 per app,
//! half of them with `nbi_shuffle` fault injection) and asserts every one
//! reproduces the OS-scheduled baseline bit-for-bit. A divergence names
//! the seed, which replays that exact schedule.
//!
//! Physical traces and timings are intentionally *not* compared: buffer
//! flush boundaries legitimately depend on the schedule.
//!
//! `FABSP_TESTKIT_SEED` offsets the seed range so CI can sweep disjoint
//! schedule sets across jobs without code changes.

use actorprof_suite::actorprof::TraceBundle;
use actorprof_suite::actorprof_trace::TraceConfig;
use actorprof_suite::fabsp_apps::histogram::{self, HistogramConfig};
use actorprof_suite::fabsp_apps::index_gather::{self, IndexGatherConfig};
use actorprof_suite::fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use actorprof_suite::fabsp_conveyors::ConveyorOptions;
use actorprof_suite::fabsp_graph::Csr;
use actorprof_suite::fabsp_shmem::{FaultSpec, Grid, SchedSpec};
use actorprof_suite::fabsp_testkit::DEFAULT_STEP_BUDGET;

/// Seeds per (app, fault) combination: 3 apps × 3 fault modes × 17 = 153
/// schedules, comfortably past the 100-schedule floor.
const SEEDS_PER_SWEEP: u64 = 17;

/// CI seed offset: disjoint jobs explore disjoint schedule sets.
fn seed_base() -> u64 {
    std::env::var("FABSP_TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The three fault modes every sweep runs under. `nbi_shuffle` delivers
/// non-blocking puts in a hostile-but-legal order at each quiet;
/// `net_flaky` injects seeded transient timeouts that the substrate must
/// retry transparently.
fn fault_modes() -> [FaultSpec; 3] {
    [
        FaultSpec::NONE,
        FaultSpec::nbi_shuffle(0xFA_B5),
        FaultSpec::net_flaky(0xF1A2, 0.2),
    ]
}

fn sweep_seeds(mode: usize) -> impl Iterator<Item = u64> {
    let lo = seed_base() + (mode as u64) * 10_000;
    lo..lo + SEEDS_PER_SWEEP
}

fn logical(bundle: &TraceBundle) -> actorprof_suite::actorprof::Matrix {
    bundle.logical_matrix().expect("logical trace collected")
}

#[test]
fn histogram_is_schedule_independent() {
    let mut cfg = HistogramConfig::new(Grid::new(2, 2).unwrap());
    cfg.updates_per_pe = 48;
    cfg.table_size_per_pe = 16;
    cfg.trace = TraceConfig::off().with_logical();
    let base = histogram::run(&cfg).expect("baseline run");
    let base_matrix = logical(&base.bundle);

    for (mode, faults) in fault_modes().into_iter().enumerate() {
        for seed in sweep_seeds(mode) {
            let mut c = cfg.clone();
            c.sched = SchedSpec::random_walk(seed);
            c.faults = faults;
            let out = histogram::run(&c)
                .unwrap_or_else(|e| panic!("histogram seed {seed} ({faults:?}): {e}"));
            assert_eq!(
                out.per_pe_updates, base.per_pe_updates,
                "histogram result diverged, seed {seed} ({faults:?})"
            );
            assert_eq!(
                logical(&out.bundle),
                base_matrix,
                "histogram logical trace diverged, seed {seed} ({faults:?})"
            );
        }
    }
}

#[test]
fn index_gather_is_schedule_independent() {
    let mut cfg = IndexGatherConfig::new(Grid::new(2, 2).unwrap());
    cfg.reads_per_pe = 40;
    cfg.table_size_per_pe = 16;
    cfg.trace = TraceConfig::off().with_logical();
    let base = index_gather::run(&cfg).expect("baseline run");
    let base_matrix = logical(&base.bundle);

    for (mode, faults) in fault_modes().into_iter().enumerate() {
        for seed in sweep_seeds(mode) {
            let mut c = cfg.clone();
            c.sched = SchedSpec::random_walk(seed);
            c.faults = faults;
            let out = index_gather::run(&c)
                .unwrap_or_else(|e| panic!("index-gather seed {seed} ({faults:?}): {e}"));
            // run() already validates every read; cross-check the count
            // and the request/response message matrix.
            assert_eq!(out.correct_reads, base.correct_reads, "seed {seed}");
            assert_eq!(
                logical(&out.bundle),
                base_matrix,
                "index-gather logical trace diverged, seed {seed} ({faults:?})"
            );
        }
    }
}

/// A 6-vertex graph with hub structure: K4 on {0..3} plus pendant
/// triangles through 4 and 5 — small enough to fuzz, non-trivial enough
/// to route wedges between all PEs.
fn fuzz_graph() -> Csr {
    let edges = [
        (1, 0),
        (2, 0),
        (3, 0),
        (2, 1),
        (3, 1),
        (3, 2),
        (4, 0),
        (4, 1),
        (5, 2),
        (5, 3),
        (5, 4),
    ];
    Csr::from_edges(6, &edges)
}

#[test]
fn triangle_count_is_schedule_independent() {
    let l = fuzz_graph();
    let cfg = TriangleConfig::new(Grid::new(2, 2).unwrap())
        .with_dist(DistKind::Cyclic)
        .with_trace(TraceConfig::off().with_logical());
    let base = count_triangles(&l, &cfg).expect("baseline run");
    let base_matrix = logical(&base.bundle);

    for (mode, faults) in fault_modes().into_iter().enumerate() {
        for seed in sweep_seeds(mode) {
            let mut c = cfg.clone();
            c.sched = SchedSpec::random_walk(seed);
            c.faults = faults;
            // validate=true: every schedule must also match the sequential
            // reference count, not just the baseline.
            let out = count_triangles(&l, &c)
                .unwrap_or_else(|e| panic!("triangle seed {seed} ({faults:?}): {e}"));
            assert_eq!(out.triangles, base.triangles, "seed {seed}");
            assert_eq!(out.per_pe_triangles, base.per_pe_triangles, "seed {seed}");
            assert_eq!(
                logical(&out.bundle),
                base_matrix,
                "triangle logical trace diverged, seed {seed} ({faults:?})"
            );
        }
    }
    // Sanity: the sweep really covers >= 100 schedules across the suite.
    const { assert!(3 * 3 * SEEDS_PER_SWEEP >= 100) };
}

#[test]
fn triangle_survives_capacity_one_aggregation() {
    // Shrink every aggregation buffer and landing slot to a single item:
    // maximal buffer-boundary pressure, constant flushing, and (on the
    // mesh) relay traffic at every step. Results must be unchanged.
    let l = fuzz_graph();
    let mut cfg = TriangleConfig::new(Grid::new(2, 2).unwrap())
        .with_dist(DistKind::RangeByNnz)
        .with_trace(TraceConfig::off().with_logical());
    cfg.conveyor = ConveyorOptions {
        capacity: 1,
        ..ConveyorOptions::default()
    };
    let base = count_triangles(&l, &cfg).expect("capacity-1 baseline");
    let base_matrix = logical(&base.bundle);

    for (mode, faults) in fault_modes().into_iter().enumerate() {
        for seed in sweep_seeds(mode).take(5) {
            let mut c = cfg.clone();
            c.sched = SchedSpec::random_walk(seed);
            c.faults = faults;
            let out = count_triangles(&l, &c)
                .unwrap_or_else(|e| panic!("capacity-1 seed {seed} ({faults:?}): {e}"));
            assert_eq!(out.triangles, base.triangles, "seed {seed}");
            assert_eq!(logical(&out.bundle), base_matrix, "seed {seed}");
        }
    }
}

#[test]
fn kill_and_restart_is_schedule_independent() {
    // Crash recovery composes with schedule exploration: killing a PE at
    // the first superstep boundary and restarting must reproduce the
    // OS-scheduled, unkilled baseline under every explored schedule. The
    // scheduler is rebuilt per attempt, so the retried attempt replays the
    // same seeded walk.
    use actorprof_suite::fabsp_shmem::RecoverySpec;

    let mut cfg = HistogramConfig::new(Grid::new(2, 2).unwrap());
    cfg.updates_per_pe = 32;
    cfg.table_size_per_pe = 16;
    cfg.trace = TraceConfig::off().with_logical();
    let base = histogram::run(&cfg).expect("baseline run");
    let base_matrix = logical(&base.bundle);

    for seed in sweep_seeds(3).take(6) {
        let mut c = cfg.clone();
        c.sched = SchedSpec::random_walk(seed);
        c.faults = FaultSpec::kill_pe(1, 0);
        c.checkpoint_every = Some(1);
        c.recovery = RecoverySpec::restart(2);
        let out = histogram::run(&c)
            .unwrap_or_else(|e| panic!("kill+restart seed {seed}: {e}"));
        assert_eq!(
            out.per_pe_updates, base.per_pe_updates,
            "recovered result diverged, seed {seed}"
        );
        assert_eq!(
            logical(&out.bundle),
            base_matrix,
            "recovered logical trace diverged, seed {seed}"
        );
        assert_eq!(out.recovery.restarts, 1, "seed {seed}: {}", out.recovery);
        assert_eq!(out.recovery.kills_observed.len(), 1, "seed {seed}");
    }
}

#[test]
fn step_budget_is_generous_enough_for_the_workloads() {
    // The termination checker (step budget) must never fire on a healthy
    // run; document the headroom so scale bumps don't silently approach it.
    let mut cfg = HistogramConfig::new(Grid::single_node(2).unwrap());
    cfg.updates_per_pe = 8;
    cfg.table_size_per_pe = 8;
    cfg.sched = SchedSpec::RandomWalk {
        seed: seed_base(),
        max_steps: DEFAULT_STEP_BUDGET,
    };
    histogram::run(&cfg).expect("healthy run must stay far under the step budget");
}
