//! Property-based testing of the conveyor across random grids,
//! topologies, capacities, and traffic patterns: every accepted message is
//! delivered exactly once, to the right PE, in pairwise FIFO order.

use actorprof_suite::fabsp_conveyors::{Conveyor, ConveyorOptions, TopologySpec};
use actorprof_suite::fabsp_shmem::{spmd, FaultSpec, Grid, Harness, SchedSpec};
use actorprof_suite::fabsp_testkit::{check_conveyor_quiescent, MsgLog};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Scenario {
    nodes: usize,
    ppn: usize,
    capacity: usize,
    topology: TopologySpec,
    /// per-PE destination sequences (index = sending PE, truncated/cycled
    /// to the grid size)
    traffic: Vec<Vec<usize>>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=3, 1usize..=3, 1usize..=8, 0usize..=3)
        .prop_flat_map(|(nodes, ppn, capacity, topo_idx)| {
            let n_pes = nodes * ppn;
            let topology = [
                TopologySpec::Auto,
                TopologySpec::OneD,
                TopologySpec::Mesh2D,
                TopologySpec::Cube3D,
            ][topo_idx];
            proptest::collection::vec(
                proptest::collection::vec(0..n_pes, 0..40),
                n_pes..=n_pes,
            )
            .prop_map(move |traffic| Scenario {
                nodes,
                ppn,
                capacity,
                topology,
                traffic,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        .. ProptestConfig::default()
    })]

    #[test]
    fn conveyor_delivers_exactly_once_in_pair_order(scenario in arb_scenario()) {
        let grid = Grid::new(scenario.nodes, scenario.ppn).unwrap();
        let traffic = std::sync::Arc::new(scenario.traffic.clone());
        let options = ConveyorOptions {
            capacity: scenario.capacity,
            topology: scenario.topology,
            ..ConveyorOptions::default()
        };
        let results = spmd::run(grid, {
            let traffic = std::sync::Arc::clone(&traffic);
            move |pe| {
                let mut c = Conveyor::<u64>::new(pe, options).unwrap();
                let my_traffic = &traffic[pe.rank()];
                // message payload: (sender, per-pair sequence number)
                let mut pair_seq = vec![0u64; pe.n_pes()];
                let mut received: Vec<Vec<u64>> = vec![Vec::new(); pe.n_pes()];
                let mut next = 0usize;
                loop {
                    while next < my_traffic.len() {
                        let dst = my_traffic[next];
                        let payload = ((pe.rank() as u64) << 32) | pair_seq[dst];
                        if c.push(pe, payload, dst).unwrap().is_accepted() {
                            pair_seq[dst] += 1;
                            next += 1;
                        } else {
                            break;
                        }
                    }
                    let active = c.advance(pe, next == my_traffic.len());
                    while let Some(d) = c.pull() {
                        assert_eq!((d.item >> 32) as u32, d.src, "origin tag mismatch");
                        received[d.src as usize].push(d.item & 0xffff_ffff);
                    }
                    if !active {
                        break;
                    }
                    pe.poll_yield();
                }
                received
            }
        })
        .unwrap();

        // exactly-once, right PE, FIFO per pair
        let n_pes = grid.n_pes();
        for (me, received) in results.iter().enumerate() {
            for src in 0..n_pes {
                let expected: u64 = traffic[src].iter().filter(|&&d| d == me).count() as u64;
                let got = &received[src];
                prop_assert_eq!(got.len() as u64, expected, "count {}->{}", src, me);
                for (k, &seq) in got.iter().enumerate() {
                    prop_assert_eq!(seq, k as u64, "pairwise FIFO {}->{}", src, me);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// The same delivery invariants, but under testkit control: a seeded
    /// random-walk schedule serializes every observable substrate event,
    /// optionally combined with nbi-shuffle faults and chaos-forced relay
    /// parking. Completion itself is the termination property — the
    /// scheduler's step budget turns any deadlock into a failed run — and
    /// the [`MsgLog`] checker verifies per-pair FIFO plus conservation.
    #[test]
    fn conveyor_invariants_hold_under_explored_schedules(
        scenario in arb_scenario(),
        seed in 0u64..(1u64 << 48),
        fault_mode in 0usize..4,
    ) {
        let grid = Grid::new(scenario.nodes, scenario.ppn).unwrap();
        let traffic = Arc::new(scenario.traffic.clone());
        let log = Arc::new(MsgLog::new());
        let options = ConveyorOptions {
            capacity: scenario.capacity,
            topology: scenario.topology,
            ..ConveyorOptions::default()
        };
        let faults = if fault_mode & 1 == 1 {
            FaultSpec::nbi_shuffle(seed ^ 0xF0)
        } else {
            FaultSpec::NONE
        };
        let harness = Harness::new(grid)
            .sched(SchedSpec::random_walk(seed))
            .faults(faults);
        let stats = spmd::run(harness, {
            let traffic = Arc::clone(&traffic);
            let log = Arc::clone(&log);
            move |pe| {
                let mut c = Conveyor::<u64>::new(pe, options).unwrap();
                if fault_mode & 2 == 2 {
                    // Randomly pretend relay buffers are full, exercising
                    // the parked-link path on mesh topologies.
                    c.inject_chaos(seed, 0.5);
                }
                let my_traffic = &traffic[pe.rank()];
                let mut pair_seq = vec![0u64; pe.n_pes()];
                let mut next = 0usize;
                loop {
                    while next < my_traffic.len() {
                        let dst = my_traffic[next];
                        let payload = ((pe.rank() as u64) << 32) | pair_seq[dst];
                        if c.push(pe, payload, dst).unwrap().is_accepted() {
                            log.push(pe.rank(), dst, pair_seq[dst]);
                            pair_seq[dst] += 1;
                            next += 1;
                        } else {
                            break;
                        }
                    }
                    let active = c.advance(pe, next == my_traffic.len());
                    while let Some(d) = c.pull() {
                        log.pull(d.src as usize, pe.rank(), d.item & 0xffff_ffff);
                    }
                    if !active {
                        break;
                    }
                    pe.poll_yield();
                }
                c.stats()
            }
        })
        .unwrap_or_else(|e| panic!("schedule seed {seed}, fault mode {fault_mode}: {e}"));

        let summary = log
            .check()
            .unwrap_or_else(|v| panic!("seed {seed}, fault mode {fault_mode}: {v}"));
        let total: usize = traffic.iter().map(|t| t.len()).sum();
        prop_assert_eq!(summary.delivered as usize, total, "conservation, seed {}", seed);
        check_conveyor_quiescent(&stats)
            .unwrap_or_else(|v| panic!("seed {seed}, fault mode {fault_mode}: {v}"));
    }
}
