//! Crash equivalence: a run that loses a PE (or a flaky network) and
//! recovers must be **bit-identical** to a run that was never disturbed.
//!
//! For each bundled kernel the suite runs an undisturbed baseline, then
//! sweeps `kill_pe(k, s)` over every rank, restarting from the superstep
//! checkpoint policy, and asserts:
//!
//! - the application result is identical to the baseline;
//! - the **logical trace matrix** is identical — recovery is invisible to
//!   the profiler's send accounting, not just to the application;
//! - the [`RecoveryLog`] reports *exactly* the injected faults (one kill
//!   on the right rank, one restart, no phantom retries).
//!
//! A multi-superstep kernel additionally sweeps the kill superstep and
//! checks the wasted-work accounting, and the flaky-network sweep checks
//! transparent timeout/retry the same way. The negative litmus pins the
//! quiescence precondition: a checkpoint at a non-quiescent cut must be
//! rejected, never silently captured.
//!
//! `ACTORPROF_RECOVERY_KILL=0` skips the kill classes (CI runs a
//! kill/no-kill matrix over this file; the no-kill lane still exercises
//! baselines, flaky-network recovery, and the litmus tests).

use std::cell::RefCell;
use std::rc::Rc;

use actorprof_suite::actorprof::{Matrix, Profiler, RecoverySpec, TraceBundle};
use actorprof_suite::actorprof_trace::TraceConfig;
use actorprof_suite::fabsp_apps::histogram::{self, HistogramConfig};
use actorprof_suite::fabsp_apps::index_gather::{self, IndexGatherConfig};
use actorprof_suite::fabsp_apps::registry;
use actorprof_suite::fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use actorprof_suite::fabsp_graph::Csr;
use actorprof_suite::fabsp_shmem::{spmd, FaultSpec, Grid, RecoveryLog, ShmemError};
use actorprof_suite::fabsp_testkit::matrix::MatrixParams;

/// Kill classes are on unless the CI matrix turns them off.
fn kill_enabled() -> bool {
    std::env::var("ACTORPROF_RECOVERY_KILL").map_or(true, |v| v != "0")
}

fn logical(bundle: &TraceBundle) -> Matrix {
    bundle.logical_matrix().expect("logical trace collected")
}

/// Assert `log` records exactly one kill of `rank` handled by one restart.
fn assert_one_recovered_kill(log: &RecoveryLog, rank: u32) {
    assert_eq!(log.kills_observed.len(), 1, "exactly one kill: {log}");
    let kill = &log.kills_observed[0];
    assert_eq!(kill.attempt, 0, "the kill fires on the initial attempt");
    assert_eq!(kill.pe, rank as usize, "the injected rank died");
    assert!(
        kill.message.contains("fault injection: kill_pe"),
        "the log names the injected fault, got: {}",
        kill.message
    );
    assert_eq!(log.restarts, 1, "one restart recovered it: {log}");
    assert!(log.checkpoints_taken >= 1, "checkpointing was active: {log}");
}

#[test]
fn every_registered_app_recovers_bit_identical_from_any_killed_pe() {
    // The registry-wide form of the per-kernel sweeps below: for each of
    // the ten apps, kill every rank in turn at the first superstep
    // boundary and demand the recovered run reproduce the undisturbed
    // baseline bit-for-bit — result digest, golden oracle, and logical
    // trace matrix — with a RecoveryLog naming exactly the injected fault.
    // This is the gate that keeps newly adopted apps honest about carrying
    // recovery state through their Outcome.
    let params = MatrixParams::new(Grid::new(2, 2).unwrap());
    for app in registry() {
        let base = app
            .run(&params)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", app.name));
        base.assert_golden(&format!("{} baseline", app.name));
        assert!(
            base.recovery.is_clean(),
            "{} baseline: {}",
            app.name,
            base.recovery
        );

        if !kill_enabled() {
            continue;
        }
        for rank in 0..params.grid.n_pes() as u32 {
            let p = params
                .clone()
                .with_faults(FaultSpec::kill_pe(rank, 0))
                .with_recovery(RecoverySpec::restart(2), 1);
            let out = app
                .run(&p)
                .unwrap_or_else(|e| panic!("{} kill rank {rank}: {e}", app.name));
            let ctx = format!("{} kill rank {rank}", app.name);
            out.assert_matches(&base, &ctx);
            out.assert_golden(&ctx);
            assert_one_recovered_kill(&out.recovery, rank);
        }
    }
}

#[test]
fn histogram_recovers_bit_identical_from_any_killed_pe() {
    let mut cfg = HistogramConfig::new(Grid::new(2, 2).unwrap());
    cfg.updates_per_pe = 48;
    cfg.table_size_per_pe = 16;
    cfg.trace = TraceConfig::off().with_logical();
    let base = histogram::run(&cfg).expect("baseline run");
    assert!(base.recovery.is_clean(), "{}", base.recovery);
    let base_matrix = logical(&base.bundle);

    if !kill_enabled() {
        return;
    }
    for rank in 0..cfg.grid.n_pes() as u32 {
        let mut c = cfg.clone();
        c.faults = FaultSpec::kill_pe(rank, 0);
        c.checkpoint_every = Some(1);
        c.recovery = RecoverySpec::restart(2);
        let out = histogram::run(&c).unwrap_or_else(|e| panic!("kill rank {rank}: {e}"));
        assert_eq!(
            out.per_pe_updates, base.per_pe_updates,
            "result diverged after recovering a kill of rank {rank}"
        );
        assert_eq!(
            logical(&out.bundle),
            base_matrix,
            "logical trace diverged after recovering a kill of rank {rank}"
        );
        assert_one_recovered_kill(&out.recovery, rank);
        assert_eq!(out.recovery.wasted_supersteps, 1, "{}", out.recovery);
    }
}

#[test]
fn index_gather_recovers_bit_identical_from_any_killed_pe() {
    let mut cfg = IndexGatherConfig::new(Grid::new(2, 2).unwrap());
    cfg.reads_per_pe = 40;
    cfg.table_size_per_pe = 16;
    cfg.trace = TraceConfig::off().with_logical();
    let base = index_gather::run(&cfg).expect("baseline run");
    assert!(base.recovery.is_clean(), "{}", base.recovery);
    let base_matrix = logical(&base.bundle);

    if !kill_enabled() {
        return;
    }
    for rank in 0..cfg.grid.n_pes() as u32 {
        let mut c = cfg.clone();
        c.faults = FaultSpec::kill_pe(rank, 0);
        c.checkpoint_every = Some(1);
        c.recovery = RecoverySpec::restart(2);
        let out = index_gather::run(&c).unwrap_or_else(|e| panic!("kill rank {rank}: {e}"));
        assert_eq!(out.correct_reads, base.correct_reads, "kill rank {rank}");
        assert_eq!(
            logical(&out.bundle),
            base_matrix,
            "logical trace diverged after recovering a kill of rank {rank}"
        );
        assert_one_recovered_kill(&out.recovery, rank);
    }
}

fn recovery_graph() -> Csr {
    let edges = [
        (1, 0),
        (2, 0),
        (3, 0),
        (2, 1),
        (3, 1),
        (3, 2),
        (4, 0),
        (4, 1),
        (5, 2),
        (5, 3),
        (5, 4),
    ];
    Csr::from_edges(6, &edges)
}

#[test]
fn triangle_recovers_bit_identical_from_any_killed_pe() {
    let l = recovery_graph();
    let cfg = TriangleConfig::new(Grid::new(2, 2).unwrap())
        .with_dist(DistKind::Cyclic)
        .with_trace(TraceConfig::off().with_logical());
    let base = count_triangles(&l, &cfg).expect("baseline run");
    assert!(base.recovery.is_clean(), "{}", base.recovery);
    let base_matrix = logical(&base.bundle);

    if !kill_enabled() {
        return;
    }
    for rank in 0..cfg.grid.n_pes() as u32 {
        let mut c = cfg.clone();
        c.faults = FaultSpec::kill_pe(rank, 0);
        c.checkpoint_every = Some(1);
        c.recovery = RecoverySpec::restart(2);
        // validate=true: the recovered count must also match the
        // sequential reference, not just the baseline run.
        let out = count_triangles(&l, &c).unwrap_or_else(|e| panic!("kill rank {rank}: {e}"));
        assert_eq!(out.triangles, base.triangles, "kill rank {rank}");
        assert_eq!(out.per_pe_triangles, base.per_pe_triangles, "kill rank {rank}");
        assert_eq!(
            logical(&out.bundle),
            base_matrix,
            "logical trace diverged after recovering a kill of rank {rank}"
        );
        assert_one_recovered_kill(&out.recovery, rank);
    }
}

/// A three-superstep kernel through the facade: each superstep every PE
/// sends one tagged message per peer; the handler folds them into a
/// per-PE accumulator that survives across supersteps.
fn three_superstep_run(profiler: Profiler) -> actorprof_suite::actorprof::Report<u64> {
    profiler
        .run(|pe, prof| {
            let acc = Rc::new(RefCell::new(0u64));
            let a = Rc::clone(&acc);
            let mut actor = prof
                .selector(1, move |_mb, msg: u64, from, _ctx| {
                    *a.borrow_mut() += msg * (from as u64 + 1);
                })
                .expect("selector");
            for round in 0..3u64 {
                actor
                    .execute(pe, |ctx| {
                        for dst in 0..ctx.n_pes() {
                            ctx.send(0, round * 10 + ctx.rank() as u64, dst)
                                .expect("send");
                        }
                        ctx.done(0).expect("done");
                    })
                    .expect("execute");
            }
            let got = *acc.borrow();
            got
        })
        .expect("profiled run")
}

#[test]
fn kill_superstep_sweep_accounts_wasted_work() {
    let grid = Grid::new(2, 2).unwrap();
    let base = three_superstep_run(Profiler::new(grid).logical());
    assert!(base.recovery.is_clean(), "{}", base.recovery);
    let base_matrix = base.bundle.logical_matrix().expect("logical");

    if !kill_enabled() {
        return;
    }
    for at_superstep in 0..3u32 {
        let out = three_superstep_run(
            Profiler::new(grid)
                .logical()
                .faults(FaultSpec::kill_pe(1, at_superstep))
                .checkpoint_every(1)
                .recovery(RecoverySpec::restart(2)),
        );
        assert_eq!(
            out.results, base.results,
            "result diverged, kill at superstep {at_superstep}"
        );
        assert_eq!(
            out.bundle.logical_matrix().expect("logical"),
            base_matrix,
            "logical trace diverged, kill at superstep {at_superstep}"
        );
        assert_one_recovered_kill(&out.recovery, 1);
        // Killing at the end of superstep s wastes supersteps 0..=s.
        assert_eq!(
            out.recovery.wasted_supersteps,
            at_superstep as u64 + 1,
            "wasted-work accounting, kill at superstep {at_superstep}: {}",
            out.recovery
        );
        // One checkpoint per begun superstep on the killed attempt, plus
        // three on the clean attempt.
        assert_eq!(
            out.recovery.checkpoints_taken,
            at_superstep as u64 + 1 + 3,
            "{}",
            out.recovery
        );
    }
}

#[test]
fn flaky_network_retries_are_transparent() {
    let mut cfg = HistogramConfig::new(Grid::new(2, 2).unwrap());
    cfg.updates_per_pe = 48;
    cfg.table_size_per_pe = 16;
    cfg.trace = TraceConfig::off().with_logical();
    let base = histogram::run(&cfg).expect("baseline run");
    let base_matrix = logical(&base.bundle);

    // Aggregation collapses the 192 sends into a handful of cross-node
    // puts, so drive the drop rate high enough that some of them are
    // guaranteed to time out under this seed.
    let mut flaky = cfg.clone();
    flaky.faults = FaultSpec::net_flaky(0xF1A2, 0.5);
    let out = histogram::run(&flaky).expect("flaky run");
    assert_eq!(out.per_pe_updates, base.per_pe_updates);
    assert_eq!(logical(&out.bundle), base_matrix);
    assert!(
        out.recovery.net_retries > 0,
        "a 50% drop rate over cross-node traffic must retry at least once: {}",
        out.recovery
    );
    assert!(out.recovery.kills_observed.is_empty(), "{}", out.recovery);
    assert_eq!(out.recovery.restarts, 0, "retries never escalate to restarts");
}

#[test]
fn kill_and_flaky_network_compose() {
    if !kill_enabled() {
        return;
    }
    let mut cfg = HistogramConfig::new(Grid::new(2, 2).unwrap());
    cfg.updates_per_pe = 32;
    cfg.table_size_per_pe = 16;
    cfg.trace = TraceConfig::off().with_logical();
    let base = histogram::run(&cfg).expect("baseline run");

    let mut c = cfg.clone();
    c.faults = FaultSpec::kill_pe(2, 0).and_net_flaky(0xBEEF, 0.5);
    c.checkpoint_every = Some(1);
    c.recovery = RecoverySpec::restart(2);
    let out = histogram::run(&c).expect("composed-fault run");
    assert_eq!(out.per_pe_updates, base.per_pe_updates);
    assert_eq!(logical(&out.bundle), logical(&base.bundle));
    assert_one_recovered_kill(&out.recovery, 2);
    assert!(out.recovery.net_retries > 0, "{}", out.recovery);
}

#[test]
fn abort_policy_still_fails_on_a_kill() {
    if !kill_enabled() {
        return;
    }
    let mut cfg = HistogramConfig::new(Grid::single_node(2).unwrap());
    cfg.updates_per_pe = 8;
    cfg.table_size_per_pe = 8;
    cfg.faults = FaultSpec::kill_pe(0, 0);
    // Default recovery is Abort: the kill must surface as an error, not
    // hang and not silently succeed.
    let err = histogram::run(&cfg).expect_err("abort policy propagates the kill");
    assert!(
        err.to_string().contains("kill_pe") || err.to_string().contains("poisoned"),
        "unexpected error: {err}"
    );
}

#[test]
fn exhausted_retries_fail_with_the_injected_fault() {
    if !kill_enabled() {
        return;
    }
    // A kill that fires on *every* attempt exhausts max_retries. Use the
    // substrate directly: FaultSpec kills only attempt 0, so panic
    // unconditionally in the closure instead.
    let grid = Grid::single_node(2).unwrap();
    let harness = actorprof_suite::fabsp_shmem::Harness::new(grid)
        .recovery(RecoverySpec::restart(2));
    let err = spmd::run_recovering(harness, |pe| {
        if pe.rank() == 1 {
            panic!("permanent failure");
        }
        pe.barrier_all();
    })
    .expect_err("a fault on every attempt must exhaust retries");
    match err {
        ShmemError::RetriesExhausted { attempts, pe, message } => {
            assert_eq!(attempts, 3, "initial + 2 retries");
            assert_eq!(pe, 1);
            assert!(message.contains("permanent failure"), "{message}");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn checkpoint_at_a_non_quiescent_cut_is_rejected() {
    // Negative litmus for the quiescence precondition: a pending
    // non-blocking put anywhere in the world poisons the cut for all PEs.
    let grid = Grid::new(2, 1).unwrap();
    spmd::run(grid, |pe| {
        let sym = pe.alloc_sym::<u64>(1);
        if pe.rank() == 0 {
            sym.put_nbi(pe, 1, 0, &[41]).unwrap();
        }
        // analyzer: allow(checkpoint-not-quiesced): deliberate negative litmus — asserts the runtime rejects this cut
        let err = pe.checkpoint().expect_err("non-quiescent cut");
        assert_eq!(err, ShmemError::CheckpointNotQuiescent { pending_nbi: 1 });
        assert!(pe.latest_checkpoint().is_none(), "nothing was captured");
        pe.quiet();
        let ckpt = pe.checkpoint().expect("quiet cut is accepted");
        assert_eq!(ckpt.allocations(), 1);
        pe.barrier_all();
    })
    .unwrap();
}
