//! Facade-equivalence tests: `actorprof::Profiler` is a convenience layer,
//! not a different profiler. For a histogram and a triangle-counting
//! workload, the facade's [`Report`] must write trace artifacts that match
//! the legacy manual wiring — `spmd::run` + `Selector::new` +
//! `into_collector` + `TraceBundle::from_collectors` + `writer::write_all`
//! — **byte for byte**.
//!
//! Both sides run under the same seeded deterministic schedule so the
//! interleaving (and hence the physical trace and PAPI per-send deltas) is
//! reproducible. `overall.txt` is deliberately not collected: it contains
//! real rdtsc cycle counts, which no two runs share.

use actorprof_suite::actorprof::{writer, PapiConfig, Profiler, TraceBundle, TraceConfig};
use actorprof_suite::fabsp_actor::{ProcCtx, Selector, SelectorConfig};
use actorprof_suite::fabsp_conveyors::ConveyorOptions;
use actorprof_suite::fabsp_hwpc::Cost;
use actorprof_suite::fabsp_shmem::{spmd, Grid, Harness, Pe, SchedSpec};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

const SEED: u64 = 0x5EED_CAFE;

/// Every format that can be compared across runs: per-send logical,
/// aggregate logical, PAPI, and physical (overall would embed wall time).
fn trace_cfg() -> TraceConfig {
    TraceConfig::off()
        .with_logical_records()
        .with_papi(PapiConfig::case_study())
        .with_physical()
}

fn sched() -> SchedSpec {
    SchedSpec::random_walk(SEED)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("actorprof-facade-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Assert the two directories hold the same file set with identical bytes.
fn assert_dirs_equal(facade: &Path, legacy: &Path) {
    let list = |d: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let names = list(facade);
    assert_eq!(names, list(legacy), "facade and legacy wrote different file sets");
    assert!(!names.is_empty(), "comparison is vacuous: no trace files written");
    for name in names {
        let a = std::fs::read(facade.join(&name)).unwrap();
        let b = std::fs::read(legacy.join(&name)).unwrap();
        assert_eq!(
            a, b,
            "{name} differs between the Profiler facade and legacy wiring"
        );
    }
}

// ---------------------------------------------------------------- histogram

const TABLE: usize = 64;
const UPDATES: usize = 120;

/// The shared handler, used verbatim by both wirings.
fn histogram_handler(
    table: Rc<RefCell<Vec<u64>>>,
) -> impl FnMut(usize, u64, u32, &mut ProcCtx<'_, u64>) {
    move |_mb, slot, _from, _ctx| {
        Cost::instructions(6).charge();
        table.borrow_mut()[slot as usize] += 1;
    }
}

/// The shared superstep body, used verbatim by both wirings.
fn drive_histogram(pe: &Pe, actor: &mut Selector<'_, u64>) {
    let n = pe.n_pes();
    let me = pe.rank() as u64;
    actor
        .execute(pe, |main| {
            for i in 0..UPDATES as u64 {
                let slot = (me.wrapping_mul(0x9E37_79B9) ^ i.wrapping_mul(31)) % TABLE as u64;
                main.send(0, slot, ((i + me) as usize) % n).expect("send");
            }
            main.done(0).expect("done");
        })
        .expect("histogram execute");
}

fn facade_histogram(grid: Grid, dir: &Path) -> Vec<u64> {
    let report = Profiler::new(grid)
        .trace_config(trace_cfg())
        .sched(sched())
        .run(|pe, prof| {
            let table = Rc::new(RefCell::new(vec![0u64; TABLE]));
            let mut actor = prof
                .selector(1, histogram_handler(Rc::clone(&table)))
                .expect("selector");
            drive_histogram(pe, &mut actor);
            let got: u64 = table.borrow().iter().sum();
            got
        })
        .expect("facade histogram run");
    report.write_to(dir).expect("facade write_to");
    report.results
}

fn legacy_histogram(grid: Grid, dir: &Path) -> Vec<u64> {
    let per_pe = spmd::run(Harness::new(grid).sched(sched()), |pe| {
        let table = Rc::new(RefCell::new(vec![0u64; TABLE]));
        let mut actor = Selector::new(
            pe,
            1,
            SelectorConfig {
                conveyor: ConveyorOptions::default(),
                trace: trace_cfg(),
            },
            histogram_handler(Rc::clone(&table)),
        )
        .expect("selector");
        drive_histogram(pe, &mut actor);
        let got: u64 = table.borrow().iter().sum();
        (got, actor.into_collector())
    })
    .expect("legacy histogram run");
    let (sums, collectors): (Vec<_>, Vec<_>) = per_pe.into_iter().unzip();
    let bundle = TraceBundle::from_collectors(collectors).expect("bundle");
    writer::write_all(dir, &bundle).expect("legacy write_all");
    sums
}

#[test]
fn facade_matches_legacy_wiring_on_histogram() {
    let grid = Grid::new(2, 2).unwrap();
    let facade_dir = fresh_dir("hist-facade");
    let legacy_dir = fresh_dir("hist-legacy");

    let facade_sums = facade_histogram(grid, &facade_dir);
    let legacy_sums = legacy_histogram(grid, &legacy_dir);

    assert_eq!(facade_sums, legacy_sums, "per-PE results diverged");
    assert_eq!(
        facade_sums.iter().sum::<u64>(),
        (UPDATES * grid.n_pes()) as u64
    );
    assert_dirs_equal(&facade_dir, &legacy_dir);
    let _ = std::fs::remove_dir_all(&facade_dir);
    let _ = std::fs::remove_dir_all(&legacy_dir);
}

// ----------------------------------------------------------------- triangle

/// Vertices of a deterministic formula graph; vertex `v` lives on PE
/// `v % n_pes`.
const VERTS: u64 = 40;

/// Undirected edge predicate (arbitrary but fixed — both wirings and the
/// serial reference use it).
fn has_edge(u: u64, v: u64) -> bool {
    let (hi, lo) = if u > v { (u, v) } else { (v, u) };
    hi != lo && (hi.wrapping_mul(7) ^ lo.wrapping_mul(13)) % 3 == 0
}

fn neighbors_below(u: u64) -> Vec<u64> {
    (0..u).filter(|&v| has_edge(u, v)).collect()
}

/// Serial reference: triangles counted as closed wedges (j, k) under u.
fn reference_triangles() -> u64 {
    let mut count = 0;
    for u in 0..VERTS {
        let adj = neighbors_below(u);
        for (a, &j) in adj.iter().enumerate() {
            for &k in &adj[a + 1..] {
                count += u64::from(has_edge(k, j));
            }
        }
    }
    count
}

/// Two-mailbox wedge checker: mailbox 0 receives `(k << 16) | j`, answers
/// the edge-existence bit on mailbox 1; mailbox 1 accumulates.
fn triangle_handler(
    count: Rc<RefCell<u64>>,
) -> impl FnMut(usize, u64, u32, &mut ProcCtx<'_, u64>) {
    move |mb, msg, from, ctx| match mb {
        0 => {
            Cost::instructions(12).charge();
            let (k, j) = (msg >> 16, msg & 0xffff);
            ctx.send(1, u64::from(has_edge(k, j)), from as usize);
        }
        1 => {
            Cost::instructions(2).charge();
            *count.borrow_mut() += msg;
        }
        _ => unreachable!("two mailboxes"),
    }
}

fn drive_triangle(pe: &Pe, actor: &mut Selector<'_, u64>) {
    let n = pe.n_pes();
    actor.chain_done(1, 0).expect("responses end after requests");
    actor
        .execute(pe, |main| {
            for u in ((pe.rank() as u64)..VERTS).step_by(n) {
                let adj = neighbors_below(u);
                for (a, &j) in adj.iter().enumerate() {
                    for &k in &adj[a + 1..] {
                        main.send(0, (k << 16) | j, (k as usize) % n).expect("send");
                    }
                }
            }
            main.done(0).expect("done");
        })
        .expect("triangle execute");
}

fn facade_triangle(grid: Grid, dir: &Path) -> u64 {
    let report = Profiler::new(grid)
        .trace_config(trace_cfg())
        .sched(sched())
        .run(|pe, prof| {
            let count = Rc::new(RefCell::new(0u64));
            let mut actor = prof
                .selector(2, triangle_handler(Rc::clone(&count)))
                .expect("selector");
            drive_triangle(pe, &mut actor);
            let got = *count.borrow();
            got
        })
        .expect("facade triangle run");
    report.write_to(dir).expect("facade write_to");
    report.results.iter().sum()
}

fn legacy_triangle(grid: Grid, dir: &Path) -> u64 {
    let per_pe = spmd::run(Harness::new(grid).sched(sched()), |pe| {
        let count = Rc::new(RefCell::new(0u64));
        let mut actor = Selector::new(
            pe,
            2,
            SelectorConfig {
                conveyor: ConveyorOptions::default(),
                trace: trace_cfg(),
            },
            triangle_handler(Rc::clone(&count)),
        )
        .expect("selector");
        drive_triangle(pe, &mut actor);
        let got = *count.borrow();
        (got, actor.into_collector())
    })
    .expect("legacy triangle run");
    let (counts, collectors): (Vec<u64>, Vec<_>) = per_pe.into_iter().unzip();
    let bundle = TraceBundle::from_collectors(collectors).expect("bundle");
    writer::write_all(dir, &bundle).expect("legacy write_all");
    counts.iter().sum()
}

#[test]
fn facade_matches_legacy_wiring_on_triangle() {
    let grid = Grid::new(2, 2).unwrap();
    let facade_dir = fresh_dir("tri-facade");
    let legacy_dir = fresh_dir("tri-legacy");

    let facade_count = facade_triangle(grid, &facade_dir);
    let legacy_count = legacy_triangle(grid, &legacy_dir);

    let expected = reference_triangles();
    assert!(expected > 0, "formula graph must actually contain triangles");
    assert_eq!(facade_count, expected, "facade miscounted triangles");
    assert_eq!(legacy_count, expected, "legacy wiring miscounted triangles");
    assert_dirs_equal(&facade_dir, &legacy_dir);
    let _ = std::fs::remove_dir_all(&facade_dir);
    let _ = std::fs::remove_dir_all(&legacy_dir);
}
