//! Correctness of the Google Trace Events export on a real profiled run:
//! parse the emitted JSON back (hand-rolled — the format is one event per
//! line), and check it against the bundle it came from.
//!
//! Invariants: one instant event per physical record; every `B` has a
//! matching `E` on the same thread under stack discipline; per-PE
//! timestamps are monotone non-decreasing across all event kinds.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use actorprof_suite::actorprof::{export, Profiler};
use actorprof_suite::fabsp_shmem::Grid;

/// One parsed trace event: (name, ph, pid, tid, ts).
#[derive(Debug, Clone)]
struct Ev {
    name: String,
    ph: char,
    tid: u64,
    ts: f64,
}

/// Extract the string value of `"key":"..."` from one JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the numeric value of `"key":...` from one JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .expect("number terminated by , or }");
    rest[..end].trim().parse().ok()
}

/// Parse every event object out of the trace-events JSON.
fn parse(json: &str) -> Vec<Ev> {
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
    assert!(json.trim_end().ends_with("]}"));
    json.lines()
        .filter(|l| l.starts_with('{') && l.contains("\"ph\":"))
        .filter(|l| !l.starts_with("{\"displayTimeUnit\""))
        .map(|l| Ev {
            name: str_field(l, "name").expect("every event is named"),
            ph: str_field(l, "ph").expect("every event has a phase").chars().next().unwrap(),
            tid: num_field(l, "tid").expect("every event has a tid") as u64,
            ts: num_field(l, "ts").unwrap_or(0.0),
        })
        .collect()
}

#[test]
fn exported_json_matches_bundle_and_nests_cleanly() {
    // 2 nodes × 2 PEs: cross-node traffic forces non-blocking puts and
    // their quiet fences, so quiet spans appear alongside advances
    let grid = Grid::new(2, 2).unwrap();
    let report = Profiler::new(grid)
        .physical()
        .spans()
        .run(|pe, ctx| {
            let table = Rc::new(RefCell::new(vec![0u64; 64]));
            let h = Rc::clone(&table);
            let mut actor = ctx
                .selector(1, move |_mb, idx: u64, _from, _ctx| {
                    h.borrow_mut()[idx as usize % 64] += 1;
                })
                .unwrap();
            actor
                .execute(pe, |main| {
                    for i in 0..500usize {
                        let dst = (i + main.rank()) % main.n_pes();
                        main.send(0, i as u64, dst).unwrap();
                    }
                    main.done(0).unwrap();
                })
                .unwrap();
            let mass: u64 = table.borrow().iter().sum();
            mass
        })
        .expect("profiled run");
    assert_eq!(report.results.iter().sum::<u64>(), 2000);

    let json = export::trace_events_json(&report.bundle).expect("export");
    let events = parse(&json);

    // --- instant events: exactly one per physical record -----------------
    let physical: usize = report
        .bundle
        .collectors()
        .iter()
        .map(|c| c.physical_records().len())
        .sum();
    let instants = events.iter().filter(|e| e.ph == 'i').count();
    assert!(physical > 0, "the run must have physical sends");
    assert_eq!(instants, physical, "one instant event per physical record");

    // --- durations: B/E balanced per thread, stack discipline ------------
    let spans: usize = report
        .bundle
        .collectors()
        .iter()
        .map(|c| c.span_records().len())
        .sum();
    assert!(spans > 0, "the run must have phase spans");
    assert_eq!(events.iter().filter(|e| e.ph == 'B').count(), spans);
    assert_eq!(events.iter().filter(|e| e.ph == 'E').count(), spans);
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    for e in &events {
        match e.ph {
            'B' => stacks.entry(e.tid).or_default().push(e.name.clone()),
            'E' => {
                let top = stacks
                    .get_mut(&e.tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("E with empty stack on tid {}", e.tid));
                assert_eq!(top, e.name, "E must close the innermost open B");
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left open spans: {stack:?}");
    }
    // every recorded phase shows up
    for phase in ["superstep", "advance", "quiet"] {
        assert!(
            events.iter().any(|e| e.ph == 'B' && e.name == phase),
            "expected at least one {phase} span"
        );
    }

    // --- timestamps monotone per PE over i/B/E ---------------------------
    let mut last: HashMap<u64, f64> = HashMap::new();
    for e in events.iter().filter(|e| e.ph != 'M' && e.ph != 'C') {
        let prev = last.entry(e.tid).or_insert(0.0);
        assert!(
            e.ts >= *prev,
            "tid {} went back in time: {} after {}",
            e.tid,
            e.ts,
            prev
        );
        *prev = e.ts;
    }
}
