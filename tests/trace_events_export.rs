//! Correctness of the Google Trace Events export on a real profiled run:
//! parse the emitted JSON back (hand-rolled — the format is one event per
//! line), and check it against the bundle it came from.
//!
//! Invariants: one instant event per physical record; every `B` has a
//! matching `E` on the same thread under stack discipline; per-PE
//! timestamps are monotone non-decreasing across all event kinds.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use actorprof_suite::actorprof::{export, OverheadBudget, Profiler};
use actorprof_suite::fabsp_shmem::Grid;

/// One parsed trace event: (name, ph, pid, tid, ts).
#[derive(Debug, Clone)]
struct Ev {
    name: String,
    ph: char,
    tid: u64,
    ts: f64,
}

/// Extract the `"args":{"name":"..."}` value from one metadata line.
fn args_name(line: &str) -> Option<String> {
    let tag = "\"args\":{\"name\":\"";
    let start = line.find(tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the string value of `"key":"..."` from one JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the numeric value of `"key":...` from one JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .expect("number terminated by , or }");
    rest[..end].trim().parse().ok()
}

/// Parse every event object out of the trace-events JSON.
fn parse(json: &str) -> Vec<Ev> {
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
    assert!(json.trim_end().ends_with("]}"));
    json.lines()
        .filter(|l| l.starts_with('{') && l.contains("\"ph\":"))
        .filter(|l| !l.starts_with("{\"displayTimeUnit\""))
        .map(|l| Ev {
            name: str_field(l, "name").expect("every event is named"),
            ph: str_field(l, "ph").expect("every event has a phase").chars().next().unwrap(),
            tid: num_field(l, "tid").expect("every event has a tid") as u64,
            ts: num_field(l, "ts").unwrap_or(0.0),
        })
        .collect()
}

#[test]
fn exported_json_matches_bundle_and_nests_cleanly() {
    // 2 nodes × 2 PEs: cross-node traffic forces non-blocking puts and
    // their quiet fences, so quiet spans appear alongside advances
    let grid = Grid::new(2, 2).unwrap();
    let report = Profiler::new(grid)
        .physical()
        .spans()
        .run(|pe, ctx| {
            let table = Rc::new(RefCell::new(vec![0u64; 64]));
            let h = Rc::clone(&table);
            let mut actor = ctx
                .selector(1, move |_mb, idx: u64, _from, _ctx| {
                    h.borrow_mut()[idx as usize % 64] += 1;
                })
                .unwrap();
            actor
                .execute(pe, |main| {
                    for i in 0..500usize {
                        let dst = (i + main.rank()) % main.n_pes();
                        main.send(0, i as u64, dst).unwrap();
                    }
                    main.done(0).unwrap();
                })
                .unwrap();
            let mass: u64 = table.borrow().iter().sum();
            mass
        })
        .expect("profiled run");
    assert_eq!(report.results.iter().sum::<u64>(), 2000);

    let json = export::trace_events_json(&report.bundle).expect("export");
    let events = parse(&json);

    // --- metadata: every PE lane is labeled pe<rank> ---------------------
    let thread_names: HashMap<u64, String> = json
        .lines()
        .filter(|l| l.contains("\"name\":\"thread_name\""))
        .map(|l| {
            (
                num_field(l, "tid").expect("tid") as u64,
                args_name(l).expect("thread_name carries args.name"),
            )
        })
        .collect();
    assert_eq!(thread_names.len(), 4, "one thread_name per PE");
    for (tid, label) in &thread_names {
        assert_eq!(label, &format!("pe{tid}"), "PE lanes are labeled pe<rank>");
    }
    assert!(!json.contains("\"PE"), "no uppercase PE labels in metadata");

    // --- instant events: exactly one per physical record -----------------
    let physical: usize = report
        .bundle
        .collectors()
        .iter()
        .map(|c| c.physical_records().len())
        .sum();
    let instants = events.iter().filter(|e| e.ph == 'i').count();
    assert!(physical > 0, "the run must have physical sends");
    assert_eq!(instants, physical, "one instant event per physical record");

    // --- durations: B/E balanced per thread, stack discipline ------------
    let spans: usize = report
        .bundle
        .collectors()
        .iter()
        .map(|c| c.span_records().len())
        .sum();
    assert!(spans > 0, "the run must have phase spans");
    assert_eq!(events.iter().filter(|e| e.ph == 'B').count(), spans);
    assert_eq!(events.iter().filter(|e| e.ph == 'E').count(), spans);
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    for e in &events {
        match e.ph {
            'B' => stacks.entry(e.tid).or_default().push(e.name.clone()),
            'E' => {
                let top = stacks
                    .get_mut(&e.tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("E with empty stack on tid {}", e.tid));
                assert_eq!(top, e.name, "E must close the innermost open B");
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left open spans: {stack:?}");
    }
    // every recorded phase shows up
    for phase in ["superstep", "advance", "quiet"] {
        assert!(
            events.iter().any(|e| e.ph == 'B' && e.name == phase),
            "expected at least one {phase} span"
        );
    }

    // --- timestamps monotone per PE over i/B/E ---------------------------
    let mut last: HashMap<u64, f64> = HashMap::new();
    for e in events.iter().filter(|e| e.ph != 'M' && e.ph != 'C') {
        let prev = last.entry(e.tid).or_insert(0.0);
        assert!(
            e.ts >= *prev,
            "tid {} went back in time: {} after {}",
            e.tid,
            e.ts,
            prev
        );
        *prev = e.ts;
    }
}

#[test]
fn continuous_run_round_trips_the_governor_lane() {
    let grid = Grid::new(2, 2).unwrap();
    let path = std::env::temp_dir().join(format!(
        "actorprof-governor-lane-{}.json",
        std::process::id()
    ));
    let report = Profiler::new(grid)
        .continuous(OverheadBudget::pct(5.0))
        .observe_every(Duration::from_millis(1), |_| {})
        .trace_events_path(&path)
        .run(|pe, ctx| {
            let seen = Rc::new(RefCell::new(0u64));
            let h = Rc::clone(&seen);
            let mut actor = ctx
                .selector(1, move |_mb, _idx: u64, _from, _ctx| *h.borrow_mut() += 1)
                .unwrap();
            actor
                .execute(pe, |main| {
                    for i in 0..20_000usize {
                        let dst = (i + main.rank()) % main.n_pes();
                        main.send(0, i as u64, dst).unwrap();
                    }
                    main.done(0).unwrap();
                })
                .unwrap();
            let handled = *seen.borrow();
            handled
        })
        .expect("continuous run");
    let governor = report.continuous.as_ref().expect("continuous report");
    assert!(governor.windows() >= 1, "at least one observation window");

    let json = std::fs::read_to_string(&path).expect("trace written");
    let _ = std::fs::remove_file(&path);

    // The governor rides as its own process after the node pids.
    let gov_pid = json
        .lines()
        .find(|l| args_name(l).as_deref() == Some("governor"))
        .and_then(|l| num_field(l, "pid"))
        .expect("governor process_name metadata") as u64;
    assert_eq!(gov_pid, 2, "synthetic pid follows the two node pids");
    assert!(
        json.lines()
            .any(|l| args_name(l).as_deref() == Some("overhead governor")),
        "governor thread_name metadata"
    );

    // One window event per governor decision: the first (no known start)
    // is an instant, every later one a balanced B/E pair; one ratchet
    // instant per stride transition.
    let window = |ph: &str| {
        json.lines()
            .filter(|l| l.contains("\"name\":\"window\"") && l.contains(&format!("\"ph\":\"{ph}\"")))
            .count() as u64
    };
    assert_eq!(window("i"), 1, "first window is an instant");
    assert_eq!(window("B"), governor.windows() - 1);
    assert_eq!(window("B"), window("E"), "window pairs balanced");
    let ratchets = json
        .lines()
        .filter(|l| l.contains("\"name\":\"ratchet\""))
        .count();
    assert_eq!(ratchets, governor.ratchet_transitions(), "ratchet instants");
    assert!(
        json.contains("\"overhead_pct\":"),
        "window args carry the measured overhead"
    );
}
