//! Property-based tests on the core invariants, spanning crates.

use actorprof_suite::actorprof::{Matrix, Quartiles};
use actorprof_suite::fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use actorprof_suite::fabsp_graph::edgelist::to_lower_triangular;
use actorprof_suite::fabsp_graph::{triangle_ref, Csr, Distribution};
use actorprof_suite::fabsp_shmem::Grid;
use proptest::prelude::*;

/// Arbitrary small graphs: up to 24 vertices, arbitrary edge pairs.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed actor count matches both sequential references on
    /// arbitrary graphs, under both distributions and a multi-node grid.
    #[test]
    fn distributed_triangle_count_matches_reference((n, raw) in arb_edges()) {
        let edges = to_lower_triangular(&raw);
        let l = Csr::from_edges(n, &edges);
        let expected = triangle_ref::count_by_wedges(&l);
        prop_assert_eq!(expected, triangle_ref::count_by_intersection(&l));
        for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
            let config = TriangleConfig::new(Grid::new(2, 2).unwrap()).with_dist(dist);
            let outcome = count_triangles(&l, &config).unwrap();
            prop_assert_eq!(outcome.triangles, expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quartiles are ordered and bounded by the sample.
    #[test]
    fn quartiles_are_ordered(values in proptest::collection::vec(0u64..1_000_000, 1..80)) {
        let q = Quartiles::of(&values);
        prop_assert!(q.min <= q.q1 && q.q1 <= q.median);
        prop_assert!(q.median <= q.q3 && q.q3 <= q.max);
        prop_assert_eq!(q.min, *values.iter().min().unwrap() as f64);
        prop_assert_eq!(q.max, *values.iter().max().unwrap() as f64);
        prop_assert!(q.mean >= q.min && q.mean <= q.max);
    }

    /// Matrix totals are conserved between row and column views.
    #[test]
    fn matrix_row_col_totals_agree(entries in proptest::collection::vec((0usize..6, 0usize..6, 0u64..1000), 0..40)) {
        let mut m = Matrix::zeros(6);
        for (r, c, v) in &entries {
            m.add(*r, *c, *v);
        }
        prop_assert_eq!(m.row_totals().iter().sum::<u64>(), m.total());
        prop_assert_eq!(m.col_totals().iter().sum::<u64>(), m.total());
        let lower = m.lower_triangular_fraction();
        prop_assert!((0.0..=1.0).contains(&lower));
        prop_assert_eq!(m.is_lower_triangular(), (lower - 1.0).abs() < 1e-12);
    }

    /// Both distributions partition the rows: every row has exactly one
    /// owner, owners are in range, and Range ownership is monotone.
    #[test]
    fn distributions_partition_rows(
        n in 1usize..200,
        p in 1usize..12,
        edges in proptest::collection::vec((0u32..200, 0u32..200), 0..100),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|(a, b)| (*a as usize) < n && (*b as usize) < n)
            .collect();
        let l = Csr::from_edges(n, &to_lower_triangular(&edges));
        for d in [Distribution::cyclic(p), Distribution::range_by_nnz(&l, p)] {
            let mut owned = vec![0usize; n];
            for pe in 0..p {
                for row in d.rows_of(pe, n) {
                    owned[row] += 1;
                    prop_assert_eq!(d.owner(row), pe);
                }
            }
            prop_assert!(owned.iter().all(|&c| c == 1));
        }
        let range = Distribution::range_by_nnz(&l, p);
        let mut last = 0;
        for row in 0..n {
            let o = range.owner(row);
            prop_assert!(o >= last);
            last = o;
        }
    }

    /// R-MAT output is deterministic, in-range, and has the requested
    /// edge count.
    #[test]
    fn rmat_basic_properties(scale in 2u32..8, seed in 0u64..1000) {
        use actorprof_suite::fabsp_graph::rmat::{generate_edges, RmatParams};
        let params = RmatParams::graph500(scale).with_seed(seed);
        let edges = generate_edges(&params);
        prop_assert_eq!(edges.len(), params.n_edges());
        let n = params.n_vertices() as u32;
        prop_assert!(edges.iter().all(|(u, v)| *u < n && *v < n));
        prop_assert_eq!(generate_edges(&params), edges);
    }

    /// Lower-triangularization is idempotent and produces strict lower
    /// edges.
    #[test]
    fn lower_triangularization_properties(raw in proptest::collection::vec((0u32..50, 0u32..50), 0..200)) {
        let once = to_lower_triangular(&raw);
        prop_assert!(once.iter().all(|(u, v)| u > v));
        prop_assert!(once.windows(2).all(|w| w[0] < w[1]));
        let twice = to_lower_triangular(&once);
        prop_assert_eq!(once, twice);
    }
}
