//! Dynamic race-detector gate (`--features race-detect`).
//!
//! Three kinds of evidence that the vector-clock checker works:
//!
//! 1. **Positive control** — a deliberately racy two-PE toy (an
//!    unsynchronized put vs. local read) is flagged on *every* schedule,
//!    OS-scheduled and across a seed sweep.
//! 2. **Negative litmus** — each [`RaceHooks`] switch weakens exactly one
//!    happens-before edge the substrate relies on (ring Acquire poll,
//!    nbi quiet delivery, barrier epoch); the detector must flag each
//!    weakening. This is how we know the *edges*, not just the accesses,
//!    are modeled: remove one and a previously-clean program races.
//! 3. **Clean-run + overhead** — a real conveyor workload runs clean under
//!    seeded schedules, and the same workload with the detector disabled
//!    gives the overhead baseline (reported in test output; the full
//!    132-schedule matrix of tests/schedule_fuzz.rs runs under this
//!    feature in the CI race-detect lane). The ten-app registry lane
//!    below additionally runs every bundled workload clean on two seeded
//!    schedules each.

#![cfg(feature = "race-detect")]

use std::time::{Duration, Instant};

use actorprof_suite::fabsp_conveyors::{Conveyor, ConveyorOptions};
use actorprof_suite::fabsp_shmem::race::RaceHooks;
use actorprof_suite::fabsp_shmem::{
    spmd, FaultSpec, Grid, Harness, RecoverySpec, SchedSpec, ShmemError, SpscRing,
};

/// The OS schedule plus a seed sweep; every entry must flag the toy race.
fn schedules() -> Vec<Option<u64>> {
    let mut s = vec![None];
    s.extend((0..10).map(Some));
    s
}

fn harness(grid: Grid, seed: Option<u64>) -> Harness {
    match seed {
        Some(seed) => Harness::new(grid).sched(SchedSpec::random_walk(seed)),
        None => Harness::new(grid),
    }
}

fn expect_race(err: ShmemError, what: &str) -> String {
    match err {
        ShmemError::PePanicked { message, .. } => {
            assert!(
                message.contains("race detected"),
                "{what}: PE panicked but not with a race report: {message}"
            );
            message
        }
        other => panic!("{what}: expected a PE panic, got {other:?}"),
    }
}

#[test]
fn racy_put_vs_local_get_is_flagged_on_every_schedule() {
    for seed in schedules() {
        let err = spmd::run(harness(Grid::single_node(2).unwrap(), seed), |pe| {
            let sym = pe.alloc_sym::<u64>(1);
            if pe.rank() == 0 {
                // No flag, no barrier, no quiet: nothing orders this put
                // against PE 1's read.
                sym.put(pe, 1, 0, &[7]).unwrap();
            } else {
                let _ = sym.local_get(pe, 0);
            }
            pe.barrier_all();
        })
        .unwrap_err();
        let msg = expect_race(err, "racy toy");
        assert!(
            msg.contains("SymmetricVec"),
            "report must name the accesses (seed {seed:?}): {msg}"
        );
    }
}

#[test]
fn litmus_downgraded_ring_acquire_is_flagged() {
    // The consumer's state poll is the Acquire that makes the producer's
    // buffer fill visible; downgrade it to Relaxed and the consumption is
    // exactly the unordered read the detector exists to catch.
    let hooks = RaceHooks {
        downgrade_ring_acquire: true,
        ..Default::default()
    };
    let h = Harness::new(Grid::single_node(2).unwrap()).race_hooks(hooks);
    let err = spmd::run(h, |pe| {
        let ring = SpscRing::<u64>::new(pe, 1, 4).unwrap();
        if pe.rank() == 0 {
            ring.write(pe, 1, 0, &[1, 2]).unwrap();
            ring.publish(pe, 1, 0, 3).unwrap();
        } else {
            while ring.state(pe, 1, 0) == 0 {
                pe.poll_yield();
            }
            ring.read_local(pe, 0, |_| ());
            ring.release(pe, 0, 0).unwrap();
        }
        pe.barrier_all();
    })
    .unwrap_err();
    let msg = expect_race(err, "downgraded ring acquire");
    assert!(msg.contains("SpscRing"), "{msg}");
}

#[test]
fn litmus_skipped_quiet_edge_is_flagged() {
    // With quiet delivery dropped, the staged non-blocking put never
    // completes as far as the detector is concerned: consuming the cell is
    // a use of in-flight data.
    let hooks = RaceHooks {
        skip_quiet_edge: true,
        ..Default::default()
    };
    let h = Harness::new(Grid::new(2, 1).unwrap()).race_hooks(hooks);
    let err = spmd::run(h, |pe| {
        let ring = SpscRing::<u64>::new(pe, 1, 4).unwrap();
        if pe.rank() == 0 {
            ring.write_nbi(pe, 1, 0, &[9]).unwrap();
            pe.quiet();
            ring.publish(pe, 1, 0, 2).unwrap();
        } else {
            while ring.state(pe, 1, 0) == 0 {
                pe.poll_yield();
            }
            ring.read_local(pe, 0, |_| ());
        }
        pe.barrier_all();
    })
    .unwrap_err();
    match err {
        ShmemError::PePanicked { message, .. } => assert!(
            message.contains("before the initiator's quiet"),
            "expected the pending-nbi report: {message}"
        ),
        other => panic!("expected a PE panic, got {other:?}"),
    }
}

#[test]
fn litmus_skipped_barrier_edge_is_flagged() {
    // put → barrier_all → local_get is the canonical correct pattern; with
    // the barrier's happens-before edge dropped the read must be reported
    // even though the physical barrier still ran.
    let hooks = RaceHooks {
        skip_barrier_edge: true,
        ..Default::default()
    };
    let h = Harness::new(Grid::single_node(2).unwrap()).race_hooks(hooks);
    let err = spmd::run(h, |pe| {
        let sym = pe.alloc_sym::<u64>(1);
        if pe.rank() == 0 {
            sym.put(pe, 1, 0, &[9]).unwrap();
        }
        pe.barrier_all();
        if pe.rank() == 1 {
            let _ = sym.local_get(pe, 0);
        }
        pe.barrier_all();
    })
    .unwrap_err();
    expect_race(err, "skipped barrier edge");
}

/// All-to-all conveyor exchange; returns (wall time, detector events).
fn conveyor_round(race: bool, seed: u64) -> (Duration, u64) {
    let grid = Grid::new(2, 2).unwrap();
    let h = Harness::new(grid)
        .sched(SchedSpec::random_walk(seed))
        .race(race);
    let start = Instant::now();
    let events = spmd::run(h, |pe| {
        let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
        let n = pe.n_pes();
        let mut received = 0usize;
        let mut sent = 0usize;
        let per_dst = 32usize;
        let total = n * per_dst;
        let mut spins = 0u64;
        loop {
            spins += 1;
            if spins > 200_000 {
                panic!(
                    "conveyor stalled on PE {}: sent {sent}/{total}, received {received}",
                    pe.rank()
                );
            }
            while sent < total {
                let dst = sent % n;
                if !c.push(pe, sent as u64, dst).unwrap().is_accepted() {
                    break;
                }
                sent += 1;
            }
            let active = c.advance(pe, sent == total);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        assert_eq!(received, total, "conveyor must deliver everything");
        pe.barrier_all();
        pe.race_events().unwrap_or(0)
    })
    .unwrap()
    .into_iter()
    .max()
    .unwrap();
    (start.elapsed(), events)
}

#[test]
fn recovery_machinery_adds_no_happens_before_regressions() {
    // Checkpoint capture, an injected kill, a transparent net retry, and a
    // full restart all run under the detector: none of them may introduce
    // an unordered access pair. The detector is rebuilt per attempt, so
    // the retried attempt is checked end-to-end too.
    for seed in [None, Some(3), Some(7)] {
        let h = harness(Grid::new(2, 1).unwrap(), seed)
            .faults(FaultSpec::kill_pe(1, 0).and_net_flaky(0xAB, 0.3))
            .checkpoint_every(1)
            .recovery(RecoverySpec::restart(2));
        let (results, log) = spmd::run_recovering(h, |pe| {
            let sym = pe.alloc_sym::<u64>(1);
            let ss = pe.begin_superstep();
            if pe.checkpoint_due(ss) {
                pe.checkpoint().expect("quiescent at superstep start");
            }
            let dst = (pe.rank() + 1) % pe.n_pes();
            sym.put_nbi(pe, dst, 0, &[pe.rank() as u64 + 1]).unwrap();
            pe.quiet();
            pe.barrier_all();
            let got = sym.local_get(pe, 0);
            pe.end_superstep(ss); // the injected kill fires here on attempt 0
            got
        })
        .unwrap_or_else(|e| panic!("recovery raced (seed {seed:?}): {e}"));
        assert_eq!(results, vec![2, 1], "seed {seed:?}");
        assert_eq!(log.restarts, 1, "seed {seed:?}: {log}");
        assert_eq!(log.kills_observed.len(), 1, "seed {seed:?}");
        assert!(log.checkpoints_taken >= 2, "both attempts checkpointed: {log}");
    }
}

#[test]
fn every_registered_app_is_clean_under_the_detector() {
    // The detector attaches by default under this feature, so running the
    // ten-app registry (bfs, components, pagerank, permute, jaccard, intsort,
    // skewed_agg, and the original three kernels) IS the check: any
    // unordered access pair in an app, the actor layer, or the conveyors
    // panics the run. Two seeded schedules per app on top of the
    // OS-scheduled baseline keep the lane cheap while still exploring
    // interleavings the OS never produces.
    use actorprof_suite::fabsp_apps::registry;
    use actorprof_suite::fabsp_testkit::matrix::MatrixParams;

    let params = MatrixParams::new(Grid::new(2, 2).unwrap());
    for (app_idx, app) in registry().into_iter().enumerate() {
        let base = app
            .run(&params)
            .unwrap_or_else(|e| panic!("{} raced on the OS schedule: {e}", app.name));
        base.assert_golden(&format!("{} (race-detect baseline)", app.name));
        for seed in 0..2u64 {
            let p = params
                .clone()
                .with_sched(SchedSpec::random_walk(0xD37EC7 + app_idx as u64 * 10 + seed));
            let out = app
                .run(&p)
                .unwrap_or_else(|e| panic!("{} raced on seed {seed}: {e}", app.name));
            out.assert_matches(&base, &format!("{} race-detect seed {seed}", app.name));
        }
    }
}

#[test]
fn batched_exchange_is_clean_under_the_detector() {
    // The batched surface (push_slice staging whole slices, pull_batch
    // handing out zero-copy runs) takes the same ring/termination edges as
    // the per-item protocol — verify no happens-before pair went missing,
    // on the OS schedule and two seeded walks.
    for seed in [None, Some(0xBA7C), Some(0xBA7D)] {
        let grid = Grid::new(2, 2).unwrap();
        let h = harness(grid, seed).race(true);
        spmd::run(h, |pe| {
            let mut c = Conveyor::<u64>::new(pe, ConveyorOptions::default()).unwrap();
            let n = pe.n_pes();
            let per_dst = 48usize;
            let total = n * per_dst;
            let slices: Vec<Vec<u64>> = (0..n)
                .map(|dst| (0..per_dst as u64).map(|k| (dst as u64) << 32 | k).collect())
                .collect();
            let mut offsets = vec![0usize; n];
            let mut received = 0usize;
            let mut spins = 0u64;
            loop {
                spins += 1;
                assert!(spins <= 200_000, "batched exchange stalled on PE {}", pe.rank());
                let mut sent = 0usize;
                for (dst, slice) in slices.iter().enumerate() {
                    if offsets[dst] < slice.len() {
                        let report = c.push_slice(pe, &slice[offsets[dst]..], dst).unwrap();
                        offsets[dst] += report.accepted;
                    }
                    sent += offsets[dst];
                }
                let active = c.advance(pe, sent == total);
                while let Some(batch) = c.pull_batch() {
                    received += batch.items.len();
                }
                if !active {
                    break;
                }
                pe.poll_yield();
            }
            assert_eq!(received, total, "batched exchange must deliver everything");
            pe.barrier_all();
        })
        .unwrap_or_else(|e| panic!("batched exchange raced (seed {seed:?}): {e}"));
    }
}

#[test]
fn conveyor_exchange_is_clean_and_overhead_is_reported() {
    // Clean across a seed sweep (the full 132-schedule app matrix runs in
    // schedule_fuzz.rs under this same feature)...
    let mut checked = Duration::ZERO;
    let mut unchecked = Duration::ZERO;
    let mut events = 0;
    for seed in 0..8 {
        let (dt_on, ev) = conveyor_round(true, seed);
        let (dt_off, ev_off) = conveyor_round(false, seed);
        assert_eq!(ev_off, 0, "disabled detector must observe nothing");
        checked += dt_on;
        unchecked += dt_off;
        events += ev;
    }
    // ...and the detector's cost is visible, not hidden: run with
    // `--nocapture` to see it.
    println!(
        "race-detect overhead: {checked:?} checked vs {unchecked:?} unchecked \
         over 8 seeded conveyor exchanges ({events} detector events, {:.1}x)",
        checked.as_secs_f64() / unchecked.as_secs_f64().max(1e-9)
    );
}
