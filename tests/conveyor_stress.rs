//! Stress and failure-injection tests for the conveyor/actor stack across
//! grids, capacities, and traffic shapes.

use actorprof_suite::fabsp_actor::{Selector, SelectorConfig};
use actorprof_suite::fabsp_conveyors::{Conveyor, ConveyorOptions, TopologySpec};
use actorprof_suite::fabsp_shmem::{spmd, Grid, ShmemError};
use std::cell::RefCell;
use std::rc::Rc;

/// Drive an asymmetric traffic pattern (PE i sends i*37 messages, all to
/// PE 0) to completion and verify delivery counts.
fn hotspot_pattern(grid: Grid, capacity: usize) {
    let results = spmd::run(grid, move |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity,
                topology: TopologySpec::Auto,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        let to_send = pe.rank() * 37;
        let mut sent = 0usize;
        let mut received = 0u64;
        loop {
            while sent < to_send && c.push(pe, sent as u64, 0).unwrap().is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == to_send);
            while c.pull().is_some() {
                received += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        received
    })
    .unwrap();
    let expected: u64 = (0..grid.n_pes()).map(|r| r as u64 * 37).sum();
    assert_eq!(results[0], expected, "PE0 received everything");
    assert!(results[1..].iter().all(|&r| r == 0));
}

#[test]
fn hotspot_all_to_one_under_various_capacities() {
    for capacity in [1, 2, 7, 64] {
        hotspot_pattern(Grid::new(2, 3).unwrap(), capacity);
    }
}

#[test]
fn hotspot_on_three_nodes() {
    hotspot_pattern(Grid::new(3, 3).unwrap(), 4);
}

#[test]
fn capacity_one_mesh_with_relays_makes_progress() {
    // The tightest configuration: every buffer holds one item, so every
    // send is a flush and the relay path constantly blocks and resumes.
    let grid = Grid::new(2, 2).unwrap();
    let results = spmd::run(grid, |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity: 1,
                topology: TopologySpec::Mesh2D,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        let n = pe.n_pes();
        let mut outbox: Vec<(u64, usize)> = (0..40u64).map(|i| (i, (i as usize) % n)).collect();
        let mut next = 0;
        let mut got = 0u64;
        loop {
            while next < outbox.len() {
                let (msg, dst) = outbox[next];
                if c.push(pe, msg, dst).unwrap().is_accepted() {
                    next += 1;
                } else {
                    break;
                }
            }
            let active = c.advance(pe, next == outbox.len());
            while c.pull().is_some() {
                got += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        outbox.clear();
        got
    })
    .unwrap();
    assert_eq!(results.iter().sum::<u64>(), 160);
}

#[test]
fn handler_panic_poisons_the_world_instead_of_hanging() {
    let grid = Grid::single_node(3).unwrap();
    let err = spmd::run(grid, |pe| {
        let mut actor = Selector::new(
            pe,
            1,
            SelectorConfig::default(),
            move |_mb, msg: u64, _from, _ctx| {
                assert!(msg != 13, "injected handler failure");
            },
        )
        .unwrap();
        actor
            .execute(pe, |ctx| {
                for i in 0..50u64 {
                    ctx.send(0, i, (i as usize) % ctx.n_pes()).unwrap();
                }
            })
            .unwrap();
    })
    .unwrap_err();
    assert!(matches!(err, ShmemError::PePanicked { .. }));
}

#[test]
fn many_selectors_in_sequence_share_the_world() {
    // Reuse the SPMD world for several back-to-back supersteps (separate
    // selectors), as real FA-BSP applications do between barriers.
    let grid = Grid::new(2, 2).unwrap();
    let results = spmd::run(grid, |pe| {
        let mut grand_total = 0u64;
        for round in 0..3u64 {
            let seen = Rc::new(RefCell::new(0u64));
            let s = Rc::clone(&seen);
            let mut actor = Selector::new(
                pe,
                1,
                SelectorConfig::default(),
                move |_mb, msg: u64, _from, _ctx| {
                    *s.borrow_mut() += msg;
                },
            )
            .unwrap();
            actor
                .execute(pe, |ctx| {
                    for i in 0..20u64 {
                        ctx.send(0, round + 1, (i as usize) % ctx.n_pes()).unwrap();
                    }
                })
                .unwrap();
            pe.barrier_all();
            grand_total += *seen.borrow();
        }
        grand_total
    })
    .unwrap();
    // per round: 4 PEs * 20 messages each carrying (round+1)
    let expected: u64 = (1..=3).map(|r| 80 * r).sum();
    assert_eq!(results.iter().sum::<u64>(), expected);
}

#[test]
fn wide_fanout_message_storm() {
    // Every PE floods every PE; checks counts under pressure.
    let grid = Grid::new(2, 4).unwrap();
    let per_pair = 400usize;
    let results = spmd::run(grid, move |pe| {
        let n = pe.n_pes();
        let seen = Rc::new(RefCell::new(vec![0u64; n]));
        let s = Rc::clone(&seen);
        let mut actor = Selector::new(
            pe,
            1,
            SelectorConfig::default(),
            move |_mb, _msg: u64, from, _ctx| {
                s.borrow_mut()[from as usize] += 1;
            },
        )
        .unwrap();
        actor
            .execute(pe, |ctx| {
                for k in 0..per_pair {
                    for dst in 0..n {
                        ctx.send(0, k as u64, dst).unwrap();
                    }
                }
            })
            .unwrap();
        let v = seen.borrow().clone();
        v
    })
    .unwrap();
    for (me, seen) in results.iter().enumerate() {
        for (src, &count) in seen.iter().enumerate() {
            assert_eq!(count, per_pair as u64, "PE{me} from PE{src}");
        }
    }
}
