//! Transport equivalence: the backend carrying cross-node bytes must be
//! invisible to every observable the profiler reports.
//!
//! The `Transport` trait's contract is *carry-at-initiation*: a backend
//! mirrors each cross-node transfer at the moment the op initiates it,
//! adding no scheduling points, no fault rolls, and no reordering. If the
//! contract holds, swapping `InProc` (zero-copy memcpy, the default) for
//! `Ipc` (shared-memory ring mailboxes) changes *nothing* the suite can
//! see: result digests, flattened logical trace matrices, and the full
//! [`RecoveryLog`] must be bit-identical per (app, schedule, fault spec).
//!
//! The sweep iterates the ten-app registry under the OS schedule plus two
//! seeded random walks, runs each (app, schedule) on both backends, and
//! compares. On top ride two fault lanes on `Ipc`: seeded `net_flaky`
//! (transparent retries must not desynchronize the backends) and
//! `kill_pe` + checkpoint restart (the kill is routed through the
//! transport's fault hook; recovery must still converge to the unkilled
//! InProc baseline).
//!
//! A divergence names the app, schedule seed, and fault spec — replaying
//! that exact configuration reproduces it deterministically.

use actorprof_suite::fabsp_apps::registry;
use actorprof_suite::fabsp_shmem::{
    FaultSpec, Grid, RecoverySpec, SchedSpec, TransportSpec,
};
use actorprof_suite::fabsp_testkit::matrix::{MatrixParams, MatrixRun};

fn equivalence_grid() -> Grid {
    Grid::new(2, 2).unwrap()
}

/// Per-(app, lane) schedule seeds, disjoint from the schedule-fuzz
/// suite's windows (which stay below 40_000).
fn lane_seed(app_idx: usize, lane: u64) -> u64 {
    40_000 + lane * 1_000 + (app_idx as u64)
}

fn run_app(
    app: &actorprof_suite::fabsp_testkit::matrix::AppSpec,
    params: &MatrixParams,
    ctx: &str,
) -> MatrixRun {
    app.run(params).unwrap_or_else(|e| panic!("{ctx}: {e}"))
}

/// Assert the full observable surface matches: digest, logical matrix,
/// golden oracle, and the recovery log.
fn assert_equivalent(ipc: &MatrixRun, inproc: &MatrixRun, ctx: &str) {
    ipc.assert_matches(inproc, &ctx);
    ipc.assert_golden(&ctx);
    assert_eq!(
        ipc.recovery, inproc.recovery,
        "{ctx}: RecoveryLog diverged across transports"
    );
}

#[test]
fn registry_results_are_transport_invariant() {
    let params = MatrixParams::new(equivalence_grid());
    for (app_idx, app) in registry().into_iter().enumerate() {
        let scheds = [
            SchedSpec::Os,
            SchedSpec::random_walk(lane_seed(app_idx, 0)),
            SchedSpec::random_walk(lane_seed(app_idx, 1)),
        ];
        for (lane, sched) in scheds.into_iter().enumerate() {
            let p = params.clone().with_sched(sched);
            let inproc = run_app(&app, &p, &format!("{} inproc lane {lane}", app.name));
            let ipc = run_app(
                &app,
                &p.with_transport(TransportSpec::ipc()),
                &format!("{} ipc lane {lane}", app.name),
            );
            assert_equivalent(&ipc, &inproc, &format!("{} lane {lane}", app.name));
        }
    }
}

#[test]
fn registry_results_are_transport_invariant_under_flaky_net() {
    // Transient injected timeouts are retried inside the substrate; the
    // retry rolls happen before the carry, so both backends must see the
    // same retry count and the same delivered bytes.
    let params = MatrixParams::new(equivalence_grid());
    let mut retries = 0u64;
    for (app_idx, app) in registry().into_iter().enumerate() {
        let p = params
            .clone()
            .with_sched(SchedSpec::random_walk(lane_seed(app_idx, 2)))
            .with_faults(FaultSpec::net_flaky(0xF1A2, 0.2));
        let inproc = run_app(&app, &p, &format!("{} flaky inproc", app.name));
        let ipc = run_app(
            &app,
            &p.with_transport(TransportSpec::ipc()),
            &format!("{} flaky ipc", app.name),
        );
        assert_equivalent(&ipc, &inproc, &format!("{} flaky", app.name));
        retries += ipc.recovery.net_retries;
    }
    // Not every app's traffic pattern draws a timeout under every seed,
    // but the sweep as a whole must have exercised the retry path.
    assert!(retries > 0, "the flaky sweep never retried anything");
}

#[test]
fn kill_and_recover_on_ipc_matches_unkilled_inproc_baseline() {
    // kill_pe is routed through the transport's fault hook; after the
    // checkpoint restart the retried attempt runs on a fresh backend (a
    // restart models a replaced node) and must converge to the clean
    // InProc baseline bit-for-bit.
    let params = MatrixParams::new(equivalence_grid());
    for (app_idx, app) in registry().into_iter().enumerate() {
        let base = run_app(&app, &params, &format!("{} kill baseline", app.name));
        base.assert_golden(&format!("{} kill baseline", app.name));
        let p = params
            .clone()
            .with_sched(SchedSpec::random_walk(lane_seed(app_idx, 3)))
            .with_faults(FaultSpec::kill_pe(1, 0))
            .with_recovery(RecoverySpec::restart(2), 1)
            .with_transport(TransportSpec::ipc());
        let ctx = format!("{} kill+recover on ipc", app.name);
        let out = run_app(&app, &p, &ctx);
        out.assert_matches(&base, &ctx);
        out.assert_golden(&ctx);
        assert_eq!(out.recovery.restarts, 1, "{ctx}: {}", out.recovery);
        assert_eq!(
            out.recovery.kills_observed.len(),
            1,
            "{ctx}: exactly one kill observed"
        );
        assert_eq!(out.recovery.kills_observed[0].pe, 1, "{ctx}: killed rank");
    }
}
