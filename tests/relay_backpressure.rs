//! Regression tests for the relay parked-link path.
//!
//! On a 2D mesh, off-row/off-column traffic is re-staged at an
//! intermediate PE (the relay). When the relay's outgoing buffer is full,
//! the incoming slot must be *parked* — cursor saved, consumption resumed
//! later — rather than dropped or spun on. That path is nearly impossible
//! to hit reliably with default capacities, so these tests force it:
//! capacity-1 buffers make every slot a flush boundary, and
//! `Conveyor::inject_chaos` makes the relay randomly pretend its buffer is
//! full, refusing re-stages with high probability.
//!
//! Invariants: no deadlock (runs complete under the deterministic
//! scheduler's step budget), every message delivered exactly once, and the
//! §IV-D memcpy accounting is unchanged — a parked slot is *retried*, not
//! re-copied, so chaos must not add item copies.

use actorprof_suite::fabsp_conveyors::{Conveyor, ConveyorOptions, ConveyorStats, TopologySpec};
use actorprof_suite::fabsp_shmem::{spmd, Grid, Harness, SchedSpec};
use actorprof_suite::fabsp_testkit::check_conveyor_quiescent;

/// All-routed exchange on a 2×2 mesh: every PE sends `msgs` messages to
/// its diagonal peer (0↔3, 1↔2), which is off-row *and* off-column, so
/// every message takes the two-hop relay path. Returns per-PE
/// (delivered-count, stats).
fn routed_exchange(
    chaos: Option<(u64, f64)>,
    sched: SchedSpec,
    msgs: usize,
) -> Vec<(u64, ConveyorStats)> {
    let grid = Grid::new(2, 2).unwrap();
    let harness = Harness::new(grid).sched(sched);
    spmd::run(harness, move |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity: 1,
                topology: TopologySpec::Mesh2D,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        if let Some((seed, p)) = chaos {
            c.inject_chaos(seed, p);
        }
        let dst = 3 - pe.rank();
        let mut sent = 0;
        let mut got = 0u64;
        loop {
            while sent < msgs && c.push(pe, sent as u64, dst).unwrap().is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == msgs);
            while c.pull().is_some() {
                got += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        (got, c.stats())
    })
    .unwrap()
}

#[test]
fn parked_links_deliver_everything_without_deadlock() {
    // 90% of relay re-stages are refused; the deterministic scheduler's
    // step budget turns any deadlock into a test failure instead of a
    // hang, so mere completion is the no-deadlock assertion.
    let results = routed_exchange(Some((0xBEEF, 0.9)), SchedSpec::random_walk(11), 20);
    let stats: Vec<ConveyorStats> = results.iter().map(|(_, s)| *s).collect();
    for (rank, (got, _)) in results.iter().enumerate() {
        assert_eq!(*got, 20, "PE {rank} must receive all 20 messages");
    }
    check_conveyor_quiescent(&stats).unwrap();
    let parks: u64 = stats.iter().map(|s| s.forced_parks).sum();
    assert!(
        parks > 0,
        "chaos at p=0.9 over 80 relayed slots must park at least once"
    );
    let relayed: u64 = stats.iter().map(|s| s.relayed).sum();
    assert_eq!(relayed, 80, "every message takes the two-hop path");
}

#[test]
fn parked_links_survive_many_schedules() {
    for seed in 0..8 {
        let results = routed_exchange(Some((seed ^ 0xC0FFEE, 0.8)), SchedSpec::random_walk(seed), 12);
        for (rank, (got, _)) in results.iter().enumerate() {
            assert_eq!(*got, 12, "seed {seed}, PE {rank}");
        }
        let stats: Vec<ConveyorStats> = results.iter().map(|(_, s)| *s).collect();
        check_conveyor_quiescent(&stats).unwrap();
    }
}

#[test]
fn parking_does_not_duplicate_copies() {
    // A park is a refusal before the re-stage copy, so the routed path's
    // 7 item copies per message (§IV-D) must be identical with and
    // without chaos — anything higher means a parked slot was re-copied.
    let msgs = 15;
    let clean = routed_exchange(None, SchedSpec::random_walk(3), msgs);
    let chaotic = routed_exchange(Some((0xD1CE, 0.85)), SchedSpec::random_walk(3), msgs);
    let copies = |r: &[(u64, ConveyorStats)]| r.iter().map(|(_, s)| s.item_copies).sum::<u64>();
    assert_eq!(
        copies(&clean),
        (4 * msgs as u64) * 7,
        "7 copies per routed message, 4 senders"
    );
    assert_eq!(
        copies(&chaotic),
        copies(&clean),
        "chaos parks must not add copies"
    );
    assert!(
        chaotic.iter().map(|(_, s)| s.forced_parks).sum::<u64>() > 0,
        "the chaotic run must actually have parked"
    );
}

#[test]
fn forced_parks_surface_through_telemetry_registry() {
    // `inject_chaos` forced parks used to be visible only in
    // `ConveyorStats`; they must also flow through the always-on metrics
    // registry, per PE, together with measured park durations.
    use actorprof_suite::fabsp_telemetry::{Counter, Hist, TelemetryRegistry};
    use std::sync::Arc;

    let grid = Grid::new(2, 2).unwrap();
    let reg = Arc::new(TelemetryRegistry::new(grid.n_pes()));
    let harness = Harness::new(grid)
        .sched(SchedSpec::random_walk(11))
        .telemetry(reg.clone());
    let msgs = 20usize;
    let results = spmd::run(harness, move |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity: 1,
                topology: TopologySpec::Mesh2D,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        c.inject_chaos(0xBEEF, 0.9);
        let dst = 3 - pe.rank();
        let mut sent = 0;
        let mut got = 0u64;
        loop {
            while sent < msgs && c.push(pe, sent as u64, dst).unwrap().is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == msgs);
            while c.pull().is_some() {
                got += 1;
            }
            if !active {
                break;
            }
            pe.poll_yield();
        }
        (got, c.stats())
    })
    .unwrap();

    for (rank, (got, _)) in results.iter().enumerate() {
        assert_eq!(*got, msgs as u64, "PE {rank} must receive all messages");
    }
    let snap = reg.snapshot();
    let stats_parks: Vec<u64> = results.iter().map(|(_, s)| s.forced_parks).collect();
    assert!(
        stats_parks.iter().sum::<u64>() > 0,
        "chaos at p=0.9 must park at least once"
    );
    assert_eq!(
        snap.counter_per_pe(Counter::ConveyorForcedParks),
        stats_parks,
        "registry forced-park counts must match ConveyorStats per PE"
    );
    assert!(
        snap.hist_count(Hist::RelayParkCycles) > 0,
        "parked slots that later drain must record their park duration"
    );
}

#[test]
fn capacity_one_preserves_memcpy_accounting() {
    // The memcpy_accounting invariants (4 self, 5 direct, 7 routed) are
    // per-item and must not depend on buffer capacity.
    let single = |grid: Grid, src: usize, dst: usize| -> u64 {
        let stats = spmd::run(grid, move |pe| {
            let mut c = Conveyor::<u64>::new(
                pe,
                ConveyorOptions {
                    capacity: 1,
                    topology: TopologySpec::Auto,
                    ..ConveyorOptions::default()
                },
            )
            .unwrap();
            let mut sent = pe.rank() != src;
            loop {
                if !sent && c.push(pe, 7, dst).unwrap().is_accepted() {
                    sent = true;
                }
                let active = c.advance(pe, sent);
                while c.pull().is_some() {}
                if !active {
                    break;
                }
                pe.poll_yield();
            }
            c.stats().item_copies
        })
        .unwrap();
        stats.iter().sum()
    };
    assert_eq!(single(Grid::single_node(1).unwrap(), 0, 0), 4, "self-send");
    assert_eq!(single(Grid::new(2, 1).unwrap(), 0, 1), 5, "cross-node direct");
    assert_eq!(single(Grid::new(2, 2).unwrap(), 0, 3), 7, "routed");
}
