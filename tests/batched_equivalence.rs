//! Batched-vs-per-item equivalence: the exchange surface is a pure
//! runtime-efficiency knob.
//!
//! Every registry app runs its workload through `send_slice`-bucketed
//! submission; the selector drives the conveyors either with the batched
//! surface (`push_slice`/`pull_batch`, the default) or the per-item
//! protocol (`push`/`pull`), selected by [`ExchangeMode`]. Because the
//! conveyor orders items per (source, destination) link identically under
//! both surfaces, the logical trace matrix and the application result
//! digest must be bit-identical across modes — under the OS schedule and
//! under seeded deterministic schedules alike. A divergence means one
//! surface dropped, duplicated, or reordered items relative to the other.

use actorprof_suite::fabsp_apps::registry;
use actorprof_suite::fabsp_conveyors::{ConveyorOptions, ExchangeMode};
use actorprof_suite::fabsp_shmem::{Grid, SchedSpec};
use actorprof_suite::fabsp_testkit::matrix::{MatrixParams, MatrixRun};

fn params_with(mode: ExchangeMode) -> MatrixParams {
    let mut p = MatrixParams::new(Grid::new(2, 2).unwrap());
    p.conveyor = ConveyorOptions {
        exchange: mode,
        ..ConveyorOptions::default()
    };
    p
}

fn run_mode(app: &actorprof_suite::fabsp_testkit::matrix::AppSpec, p: &MatrixParams, ctx: &str) -> MatrixRun {
    let run = app.run(p).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    run.assert_golden(&ctx);
    run
}

#[test]
fn batched_and_per_item_agree_under_the_os_schedule() {
    for app in registry() {
        let batched = run_mode(
            &app,
            &params_with(ExchangeMode::Batched),
            &format!("{} batched", app.name),
        );
        let per_item = run_mode(
            &app,
            &params_with(ExchangeMode::PerItem),
            &format!("{} per-item", app.name),
        );
        batched.assert_matches(&per_item, &format!("{} batched vs per-item", app.name));
    }
}

#[test]
fn batched_and_per_item_agree_under_seeded_schedules() {
    for (app_idx, app) in registry().into_iter().enumerate() {
        for seed in [0xBA7C_0000 + app_idx as u64, 0xBA7C_1000 + app_idx as u64] {
            let batched = run_mode(
                &app,
                &params_with(ExchangeMode::Batched).with_sched(SchedSpec::random_walk(seed)),
                &format!("{} batched seed {seed}", app.name),
            );
            let per_item = run_mode(
                &app,
                &params_with(ExchangeMode::PerItem).with_sched(SchedSpec::random_walk(seed)),
                &format!("{} per-item seed {seed}", app.name),
            );
            batched.assert_matches(
                &per_item,
                &format!("{} batched vs per-item seed {seed}", app.name),
            );
        }
    }
}

#[test]
fn adaptive_capacity_reproduces_the_fixed_capacity_result() {
    // The adaptive controller only moves the slab occupancy target —
    // flush boundaries, never ordering — so results and logical matrices
    // must match a fixed-capacity run of the same seeded schedule.
    for app in registry() {
        let mut fixed = params_with(ExchangeMode::Batched);
        fixed = fixed.with_sched(SchedSpec::random_walk(0xADA7));
        let mut adaptive = fixed.clone();
        adaptive.conveyor.adaptive = true;
        let a = run_mode(&app, &fixed, &format!("{} fixed-capacity", app.name));
        let b = run_mode(&app, &adaptive, &format!("{} adaptive-capacity", app.name));
        a.assert_matches(&b, &format!("{} fixed vs adaptive", app.name));
    }
}
