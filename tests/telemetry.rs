//! Integration tests for the always-on telemetry registry: end-to-end
//! counter accuracy against `ConveyorStats`, and the flight recorder's
//! post-mortem dump when a run dies (here: the deterministic scheduler's
//! termination budget trips, the same path a PE panic or testkit fault
//! takes).

use std::sync::Arc;

use actorprof_suite::fabsp_conveyors::{Conveyor, ConveyorOptions, ConveyorStats, TopologySpec};
use actorprof_suite::fabsp_shmem::{spmd, Grid, Harness, SchedSpec};
use actorprof_suite::fabsp_telemetry::{Counter, Hist, TelemetryRegistry};

/// Neighbour exchange returning per-PE stats, against a shared registry.
fn exchange(reg: Arc<TelemetryRegistry>, msgs: usize) -> Vec<ConveyorStats> {
    let grid = Grid::single_node(2).unwrap();
    let harness = Harness::new(grid)
        .sched(SchedSpec::random_walk(5))
        .telemetry(reg);
    spmd::run(harness, move |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity: 4,
                topology: TopologySpec::Auto,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        let dst = 1 - pe.rank();
        let mut sent = 0;
        loop {
            while sent < msgs && c.push(pe, sent as u64, dst).unwrap().is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == msgs);
            while c.pull().is_some() {}
            if !active {
                break;
            }
            pe.poll_yield();
        }
        c.stats()
    })
    .unwrap()
}

#[test]
fn registry_counters_match_conveyor_stats() {
    let reg = Arc::new(TelemetryRegistry::new(2));
    let stats = exchange(reg.clone(), 200);
    let snap = reg.snapshot();

    // push refusals are counted on the same code path as the stats field
    let refusals: Vec<u64> = stats.iter().map(|s| s.push_refusals).collect();
    assert_eq!(
        snap.counter_per_pe(Counter::ConveyorPushRetries),
        refusals,
        "registry push-retry counts must match ConveyorStats per PE"
    );
    // capacity 4 with 200 messages must refuse at least once
    assert!(refusals.iter().sum::<u64>() > 0);

    // substrate activity flows through: every nonblock/local send is a put
    assert!(snap.counter_total(Counter::ShmemPuts) > 0);
    let advances: u64 = stats.iter().map(|s| s.advances).sum();
    assert_eq!(
        snap.hist_count(Hist::AdvanceCycles),
        advances,
        "one advance-latency observation per advance call"
    );
}

#[test]
fn flight_dump_written_when_termination_budget_trips() {
    let dir = std::env::temp_dir().join(format!("fabsp-flightrec-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reg = Arc::new(TelemetryRegistry::new(2).flight_dump_dir(&dir));

    let grid = Grid::single_node(2).unwrap();
    let harness = Harness::new(grid)
        // a 10-step budget is far too small for 500 messages through
        // capacity-1 buffers: the termination checker trips mid-run,
        // poisoning the world
        .sched(SchedSpec::RandomWalk {
            seed: 9,
            max_steps: 10,
        })
        .telemetry(reg.clone());
    let outcome = spmd::run(harness, move |pe| {
        let mut c = Conveyor::<u64>::new(
            pe,
            ConveyorOptions {
                capacity: 1,
                topology: TopologySpec::Auto,
                ..ConveyorOptions::default()
            },
        )
        .unwrap();
        let dst = 1 - pe.rank();
        let mut sent = 0;
        loop {
            while sent < 500 && c.push(pe, sent as u64, dst).unwrap().is_accepted() {
                sent += 1;
            }
            let active = c.advance(pe, sent == 500);
            while c.pull().is_some() {}
            if !active {
                break;
            }
            pe.poll_yield();
        }
    });
    assert!(outcome.is_err(), "the step budget must trip");

    // every PE that died must have dumped its flight ring; a PE the
    // serialized scheduler never ran legitimately dumps an empty ring, but
    // the PE that was executing when the budget tripped must have spans
    let mut dumped = 0;
    let mut with_spans = 0;
    for rank in 0..2 {
        let path = dir.join(format!("flightrec-pe{rank}.json"));
        if !path.exists() {
            continue;
        }
        dumped += 1;
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains(&format!("\"pe\":{rank}")), "dump names its PE");
        assert!(
            body.contains("\"events\":["),
            "dump carries the event ring:\n{body}"
        );
        if body.contains("\"phase\":\"advance\"") {
            with_spans += 1;
        }
    }
    assert!(dumped >= 1, "at least the tripping PE dumps its ring");
    assert!(
        with_spans >= 1,
        "the running PE's advance spans reached its flight ring"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
