//! Forked launch mode and `Transport` error paths.
//!
//! `spmd::run_forked` spawns worker *processes* (self-reexec: the
//! coordinator re-runs this test binary with a filter naming the same
//! test, and the `ACTORPROF_IPC_WORKER` env marker routes the child into
//! the worker branch) hosting PE groups over the `Ipc` transport's shared
//! segment. These tests pin the contract's failure surface:
//!
//! - a worker that never joins is a typed
//!   [`ShmemError::TransportRendezvous`], never a hang;
//! - a worker process dying mid-superstep surfaces as a [`KillRecord`]
//!   (attributed from the segment's death note) and restart recovery
//!   re-runs the whole world to the correct result;
//! - a frame that cannot fit the ring mailbox is a typed
//!   [`ShmemError::SegmentExhausted`], surfaced through the ordinary
//!   `put` result even in threaded mode.

use std::time::Duration;

use actorprof_suite::fabsp_shmem::spmd::{self, ForkPlan};
use actorprof_suite::fabsp_shmem::transport::ipc::IpcEndpoint;
use actorprof_suite::fabsp_shmem::{
    FaultSpec, Grid, Harness, RecoverySpec, ShmemError, TransportSpec,
};

const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// All-to-all byte exchange with a closing barrier: each PE sends
/// `rank + 1` to every peer and returns the sum of what it received.
fn exchange_body(ep: &IpcEndpoint) -> u64 {
    let n = ep.n_pes();
    let me = ep.rank();
    for dst in 0..n {
        if dst != me {
            ep.send(dst, &[(me + 1) as u8]).unwrap();
        }
    }
    let mut sum = 0u64;
    for src in 0..n {
        if src != me {
            sum += ep.recv(src, IO_TIMEOUT).unwrap()[0] as u64;
        }
    }
    ep.end_superstep(0);
    ep.barrier(IO_TIMEOUT).unwrap();
    sum
}

/// Expected [`exchange_body`] result for `rank` in an `n`-PE world.
fn expected_sum(n: usize, rank: usize) -> u64 {
    (1..=n as u64).sum::<u64>() - (rank as u64 + 1)
}

#[test]
fn forked_pes_exchange_across_process_boundaries() {
    let plan = ForkPlan::new(
        2,
        2,
        &["forked_pes_exchange_across_process_boundaries", "--exact"],
    );
    let run = spmd::run_forked(plan, exchange_body).expect("forked run");
    let expect: Vec<u64> = (0..4).map(|r| expected_sum(4, r)).collect();
    assert_eq!(run.results, expect, "cross-process exchange sums");
    assert!(run.recovery.is_clean(), "{}", run.recovery);
}

#[test]
fn rendezvous_timeout_is_a_typed_error_not_a_hang() {
    // The reentry filter matches nothing: the children run zero tests and
    // exit without ever joining the control plane, so the coordinator's
    // rendezvous must elapse its deadline and fail *typed*.
    let plan = ForkPlan::new(1, 1, &["no_such_forked_worker_entrypoint", "--exact"])
        .rendezvous_timeout(Duration::from_millis(600));
    match spmd::run_forked(plan, exchange_body) {
        Err(ShmemError::TransportRendezvous { waited_ms, detail }) => {
            assert!(waited_ms >= 600, "deadline honored, waited {waited_ms} ms");
            assert!(
                detail.contains("0/1"),
                "detail names the missing workers: {detail}"
            );
        }
        other => panic!("expected TransportRendezvous, got {other:?}"),
    }
}

#[test]
fn worker_death_mid_superstep_surfaces_as_kill_record_and_recovers() {
    // Rank 1's end_superstep fail-stops its whole worker process on
    // attempt 0 (the node-death model). Peers' barriers abort on the
    // death note instead of hanging, the coordinator attributes a
    // KillRecord from the segment, and the restarted attempt converges.
    let plan = ForkPlan::new(
        2,
        2,
        &[
            "worker_death_mid_superstep_surfaces_as_kill_record_and_recovers",
            "--exact",
        ],
    )
    .faults(FaultSpec::kill_pe(1, 0))
    .recovery(RecoverySpec::restart(2));
    let run = spmd::run_forked(plan, exchange_body).expect("recovered forked run");
    let expect: Vec<u64> = (0..4).map(|r| expected_sum(4, r)).collect();
    assert_eq!(run.results, expect, "post-recovery exchange sums");
    assert_eq!(run.recovery.restarts, 1, "{}", run.recovery);
    assert_eq!(run.recovery.kills_observed.len(), 1);
    let kill = &run.recovery.kills_observed[0];
    assert_eq!(kill.pe, 1, "death note names the injected rank");
    assert_eq!(kill.attempt, 0);
    assert!(
        kill.message.contains("kill_pe"),
        "kill attributed to fault injection: {}",
        kill.message
    );
}

#[test]
fn worker_death_without_recovery_is_a_typed_error() {
    let plan = ForkPlan::new(
        2,
        1,
        &["worker_death_without_recovery_is_a_typed_error", "--exact"],
    )
    .faults(FaultSpec::kill_pe(0, 0));
    match spmd::run_forked(plan, exchange_body) {
        Err(ShmemError::PePanicked { pe, message }) => {
            assert_eq!(pe, 0);
            assert!(message.contains("kill_pe"), "{message}");
        }
        other => panic!("expected PePanicked, got {other:?}"),
    }
}

#[test]
fn oversized_put_returns_segment_exhausted_in_threaded_mode() {
    // A 2-node grid with a 64-byte ring: a 256-byte cross-node put cannot
    // ever fit one frame, so the carry fails typed at initiation and the
    // error surfaces through the ordinary put() result.
    let harness = Harness::new(Grid::new(2, 1).unwrap())
        .transport(TransportSpec::ipc_with_ring_bytes(64));
    let checked = spmd::run(harness, |pe| {
        let table = pe.alloc_sym::<u64>(64);
        let verdict = if pe.rank() == 0 {
            let big = [7u64; 32];
            match table.put(pe, 1, 0, &big) {
                Err(ShmemError::SegmentExhausted {
                    needed,
                    available,
                    ring_bytes,
                }) => {
                    assert_eq!(ring_bytes, 64);
                    assert!(needed > ring_bytes, "{needed} byte frame vs {ring_bytes}");
                    assert!(available <= ring_bytes);
                    true
                }
                other => panic!("expected SegmentExhausted, got {other:?}"),
            }
        } else {
            false
        };
        pe.barrier_all();
        verdict
    })
    .unwrap();
    assert_eq!(checked, vec![true, false]);
}
