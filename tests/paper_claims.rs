//! The paper's §IV-D observations, asserted as tests.
//!
//! The absolute numbers of the paper came from scale-16 R-MAT on
//! Perlmutter; these tests check the *shape* claims — who is imbalanced,
//! in which direction, and which patterns appear — at a laptop scale where
//! they are equally present (power-law skew is scale-stable).

use actorprof_suite::actorprof::overall::OverallSummary;
use actorprof_suite::actorprof::papi::PapiSeries;
use actorprof_suite::actorprof::stats::Imbalance;
use actorprof_suite::actorprof::TraceBundle;
use actorprof_suite::actorprof_trace::TraceConfig;
use actorprof_suite::fabsp_apps::triangle::{count_triangles, DistKind, TriangleConfig};
use actorprof_suite::fabsp_graph::edgelist::to_lower_triangular;
use actorprof_suite::fabsp_graph::rmat::{generate_edges, RmatParams};
use actorprof_suite::fabsp_graph::Csr;
use actorprof_suite::fabsp_hwpc::Event;
use actorprof_suite::fabsp_shmem::Grid;

use std::sync::OnceLock;

const SCALE: u32 = 9;

fn graph() -> &'static Csr {
    static G: OnceLock<Csr> = OnceLock::new();
    G.get_or_init(|| {
        let params = RmatParams::graph500(SCALE);
        let edges = to_lower_triangular(&generate_edges(&params));
        Csr::from_edges(params.n_vertices(), &edges)
    })
}

fn run(grid: Grid, dist: DistKind) -> &'static TraceBundle {
    // Each (grid-kind, dist) pair is executed once and shared by every
    // claim test — the runs are the expensive part.
    static CACHE: OnceLock<[TraceBundle; 4]> = OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        let mk = |grid: Grid, dist: DistKind| {
            count_triangles(
                graph(),
                &TriangleConfig::new(grid)
                    .with_dist(dist)
                    .with_trace(TraceConfig::all()),
            )
            .expect("case-study run")
            .bundle
        };
        let one = Grid::new(1, 8).unwrap();
        let two = Grid::new(2, 8).unwrap();
        [
            mk(one, DistKind::Cyclic),
            mk(one, DistKind::RangeByNnz),
            mk(two, DistKind::Cyclic),
            mk(two, DistKind::RangeByNnz),
        ]
    });
    let idx = match (grid.nodes(), dist) {
        (1, DistKind::Cyclic) => 0,
        (1, DistKind::RangeByNnz) => 1,
        (2, DistKind::Cyclic) => 2,
        (2, DistKind::RangeByNnz) => 3,
        _ => panic!("unexpected grid"),
    };
    &cache[idx]
}

fn one_node() -> Grid {
    Grid::new(1, 8).unwrap()
}

fn two_node() -> Grid {
    Grid::new(2, 8).unwrap()
}

/// Figs 3–4: "For 1D Cyclic ... PE0 incurs more communication with a
/// specific set of PEs relative to the rest."
#[test]
fn cyclic_pe0_is_the_hot_spot() {
    for grid in [one_node(), two_node()] {
        let m = run(grid, DistKind::Cyclic).logical_matrix().unwrap();
        let sends = m.row_totals();
        let recvs = m.col_totals();
        assert_eq!(
            Imbalance::of(&sends).argmax,
            0,
            "PE0 sends the most under cyclic ({:?} nodes)",
            grid.nodes()
        );
        assert_eq!(Imbalance::of(&recvs).argmax, 0, "PE0 receives the most");
        assert!(
            Imbalance::of(&sends).max_over_mean > 1.5,
            "heavy send imbalance expected, got {:.2}",
            Imbalance::of(&sends).max_over_mean
        );
    }
}

/// Figs 3–4 + 6: "the 1D Range has a lower triangular (L) shape" and the
/// recv totals decrease monotonically with rank.
#[test]
fn range_matrix_is_lower_triangular_with_decreasing_recvs() {
    for grid in [one_node(), two_node()] {
        let m = run(grid, DistKind::RangeByNnz).logical_matrix().unwrap();
        assert!(m.is_lower_triangular(), "(L) observation");
        let recvs = m.col_totals();
        let decreasing = recvs.windows(2).filter(|w| w[1] <= w[0]).count();
        assert!(
            decreasing as f64 >= (recvs.len() - 1) as f64 * 0.8,
            "recvs should trend monotonically down: {recvs:?}"
        );
    }
}

/// Fig 5 conclusion: Range balances *sends* much better than Cyclic, but
/// the *recv* imbalance persists.
#[test]
fn range_fixes_send_balance_but_not_recv_balance() {
    for grid in [one_node(), two_node()] {
        let cyclic = run(grid, DistKind::Cyclic).logical_matrix().unwrap();
        let range = run(grid, DistKind::RangeByNnz).logical_matrix().unwrap();
        let send_imb = |m: &actorprof_suite::actorprof::Matrix| {
            Imbalance::of(&m.row_totals()).max_over_mean
        };
        let recv_imb = |m: &actorprof_suite::actorprof::Matrix| {
            Imbalance::of(&m.col_totals()).max_over_mean
        };
        assert!(
            send_imb(&range) < send_imb(&cyclic),
            "range send balance must improve: {:.2} vs {:.2}",
            send_imb(&range),
            send_imb(&cyclic)
        );
        assert!(
            recv_imb(&range) > 1.3,
            "recv imbalance persists under range (paper's conclusion), got {:.2}",
            recv_imb(&range)
        );
    }
}

/// Fig 5: "1D Cyclic performs a maximum of ~6x sends" relative to Range —
/// we assert the direction and a conservative factor.
#[test]
fn cyclic_max_sends_dominate_range_max_sends() {
    for grid in [one_node(), two_node()] {
        let cyclic = run(grid, DistKind::Cyclic).logical_matrix().unwrap();
        let range = run(grid, DistKind::RangeByNnz).logical_matrix().unwrap();
        let max_send = |m: &actorprof_suite::actorprof::Matrix| {
            m.row_totals().into_iter().max().unwrap_or(0)
        };
        let ratio = max_send(&cyclic) as f64 / max_send(&range).max(1) as f64;
        assert!(
            ratio > 1.5,
            "cyclic max sends should far exceed range's (paper ~6x), got {ratio:.2}x"
        );
    }
}

/// Figs 8–9 topology claims: 1 node is pure local_send (1D linear);
/// 2 nodes split into row local_sends and column nonblock_sends (2D mesh).
#[test]
fn physical_trace_reflects_topology() {
    use actorprof_suite::actorprof_trace::SendType;
    let one = run(one_node(), DistKind::Cyclic);
    let local = one.physical_matrix(Some(SendType::LocalSend)).unwrap();
    let nonblock = one.physical_matrix(Some(SendType::NonblockSend)).unwrap();
    assert!(local.total() > 0);
    assert_eq!(nonblock.total(), 0, "one node: no non-blocking sends");

    let two_grid = two_node();
    let two = run(two_grid, DistKind::Cyclic);
    let local = two.physical_matrix(Some(SendType::LocalSend)).unwrap();
    let nonblock = two.physical_matrix(Some(SendType::NonblockSend)).unwrap();
    assert!(nonblock.total() > 0, "two nodes use the mesh column");
    for src in 0..two_grid.n_pes() {
        for dst in 0..two_grid.n_pes() {
            if local.get(src, dst) > 0 {
                assert!(two_grid.same_node(src, dst));
            }
            if nonblock.get(src, dst) > 0 {
                assert!(!two_grid.same_node(src, dst));
                assert_eq!(two_grid.local_index(src), two_grid.local_index(dst));
            }
        }
    }
}

/// Fig 7 direction: physical sends under Cyclic are worse (more buffers
/// from the hottest PE) than under Range.
#[test]
fn cyclic_physical_sends_exceed_range() {
    for grid in [one_node(), two_node()] {
        let cyclic = run(grid, DistKind::Cyclic).physical_matrix(None).unwrap();
        let range = run(grid, DistKind::RangeByNnz).physical_matrix(None).unwrap();
        let max_send = |m: &actorprof_suite::actorprof::Matrix| {
            m.row_totals().into_iter().max().unwrap_or(0)
        };
        assert!(
            max_send(&cyclic) > max_send(&range),
            "cyclic max buffer sends should exceed range's"
        );
    }
}

/// Figs 10–11: "PE0 suffers from an imbalance (up to ~5x) in the number
/// of instructions compared with other PEs" under 1D Cyclic.
#[test]
fn cyclic_instruction_counts_peak_on_pe0() {
    for grid in [one_node(), two_node()] {
        let bundle = run(grid, DistKind::Cyclic);
        let series = PapiSeries::from_bundle(bundle, Event::TotIns).unwrap();
        assert_eq!(series.imbalance.argmax, 0, "PE0 retires the most");
        assert!(
            series.imbalance.max_over_mean > 1.5,
            "instruction imbalance expected, got {:.2}",
            series.imbalance.max_over_mean
        );
        // Range flattens it
        let range = PapiSeries::from_bundle(run(grid, DistKind::RangeByNnz), Event::TotIns).unwrap();
        assert!(
            range.imbalance.max_over_mean < series.imbalance.max_over_mean,
            "range must reduce the instruction imbalance"
        );
    }
}

/// Figs 12–13: COMM is the bottleneck for both distributions; MAIN is a
/// small fraction of total time.
#[test]
fn comm_region_dominates_the_breakdown() {
    for grid in [one_node(), two_node()] {
        for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
            let records = run(grid, dist).overall_records().unwrap();
            let s = OverallSummary::of(&records);
            assert_eq!(
                s.bottleneck, "T_COMM",
                "{} on {} nodes: {:?}",
                dist.label(),
                grid.nodes(),
                (s.main.fraction, s.comm.fraction, s.proc.fraction)
            );
            assert!(
                s.main.fraction < 0.35,
                "MAIN is the small region (paper: <=5% at scale 16), got {:.2}",
                s.main.fraction
            );
        }
    }
}

/// Fig 5, one-node detail: under 1D Cyclic the total send and recv message
/// counts agree globally (every message sent is received).
#[test]
fn sends_equal_recvs_globally() {
    for grid in [one_node(), two_node()] {
        for dist in [DistKind::Cyclic, DistKind::RangeByNnz] {
            let m = run(grid, dist).logical_matrix().unwrap();
            assert_eq!(
                m.row_totals().iter().sum::<u64>(),
                m.col_totals().iter().sum::<u64>()
            );
            assert_eq!(m.total(), graph().wedge_count());
        }
    }
}
